"""The origin datacenter: the always-hit root of the serving tree.

The origin holds every uploaded video (the filtered catalogue) and never
misses — but it is *far* from most viewers and its egress is the cost
the paper's introduction says dominates UGC serving. The controller
falls back here only when no live replica can serve a request, so every
``fetch`` is backbone traffic the placement layer failed to avoid.

Latency is simulated with ``asyncio.sleep`` — real on a production
loop, instant and deterministic on a
:class:`~repro.serving.simtime.VirtualTimeLoop`. An optional
:class:`~repro.crawler.politeness.TokenBucket` models finite origin
egress: when the bucket is dry, fetches queue for (virtual) bucket
refill time, so an origin-hammering policy pays visibly in the serving
distribution.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.crawler.politeness import TokenBucket
from repro.datamodel.dataset import Dataset
from repro.errors import ServingError, VideoNotFoundError


class Origin:
    """Holds the full catalogue; serves any known video, with latency.

    Args:
        catalogue: Every video the provider serves.
        country: Where the origin datacenter sits (the paper's 2011
            YouTube origin was in the US).
        latency_seconds: Simulated one-way fetch latency.
        rate_limit: Optional egress throttle (requests/second bucket);
            ``None`` models unbounded origin capacity.
    """

    def __init__(
        self,
        catalogue: Dataset,
        country: str = "US",
        latency_seconds: float = 0.08,
        rate_limit: Optional[TokenBucket] = None,
    ):
        if latency_seconds < 0:
            raise ServingError(
                f"latency_seconds must be >= 0, got {latency_seconds}"
            )
        self.catalogue = catalogue
        self.country = country
        self.latency_seconds = latency_seconds
        self.rate_limit = rate_limit
        self._fetches = 0
        self._throttle_seconds = 0.0
        self._bucket_horizon = 0.0

    async def fetch(self, video_id: str) -> str:
        """Serve ``video_id`` from the origin; raises on unknown ids."""
        if self.rate_limit is not None:
            # Concurrent fetches may share one loop instant; the bucket
            # demands a nondecreasing clock, so reservations queue FIFO
            # behind the bucket's horizon and each fetch pays its queue
            # delay plus its own refill wait.
            now = asyncio.get_event_loop().time()
            arrival = max(now, self._bucket_horizon)
            refill = self.rate_limit.acquire(arrival)
            self._bucket_horizon = arrival + refill
            wait = self._bucket_horizon - now
            if wait > 0:
                self._throttle_seconds += wait
                await asyncio.sleep(wait)
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
        if video_id not in self.catalogue:
            raise VideoNotFoundError(f"origin does not hold {video_id!r}")
        self._fetches += 1
        return video_id

    @property
    def fetches(self) -> int:
        """Requests the origin actually served (backbone traffic)."""
        return self._fetches

    @property
    def throttle_seconds(self) -> float:
        """Total simulated time fetches queued on the egress bucket."""
        return self._throttle_seconds
