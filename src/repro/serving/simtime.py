"""Deterministic simulation time for asyncio: the test harness's core.

The serving layer is ordinary asyncio code — coroutines that ``await
asyncio.sleep(latency)`` to model network and disk time. Run on a
normal event loop those sleeps are real, tests crawl, and timing races
make failures unreproducible. :class:`VirtualTimeLoop` removes the wall
clock entirely:

- ``loop.time()`` reads a *virtual* clock starting at 0.0;
- whenever the loop would block waiting for the next timer, it instead
  jumps the virtual clock straight to that timer's deadline and keeps
  going ("auto-advance", the FoundationDB / trio-autojump discipline).

Every ``asyncio.sleep``, ``wait_for`` timeout, circuit-breaker
``reset_timeout``, and retry backoff therefore elapses deterministically
and instantly. A single-threaded loop with a FIFO ready queue and a
deterministic timer heap is a *seeded scheduler* in the relevant sense:
given the same coroutines and the same (seeded) workload, every
interleaving replays identically, run after run — there is no
wall-clock jitter left to race against.

If the loop ever has no runnable callback *and* no scheduled timer, no
source of progress exists (this loop does no real I/O), so it raises
:class:`~repro.errors.SimulationDeadlockError` instead of hanging — a
blocked-forever test fails immediately with a meaningful error.

Use :func:`run_virtual` for one coroutine, or :class:`SimulationHarness`
to keep one virtual timeline alive across many ``run`` calls (stateful
property tests drive the same cluster through hundreds of steps).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Optional, TypeVar

from repro.errors import SimulationDeadlockError

T = TypeVar("T")


def running_loop_time() -> float:
    """``now()`` on the *running* loop's clock — virtual when inside a
    :class:`VirtualTimeLoop`. The natural breaker/limiter clock for
    async serving components."""
    return asyncio.get_event_loop().time()


class _AutoAdvanceSelector:
    """Selector proxy: waiting becomes advancing the virtual clock.

    ``BaseEventLoop._run_once`` computes how long it may block (0 when
    callbacks are ready, the delay to the next timer otherwise, ``None``
    when it would block forever) and passes it to
    ``selector.select(timeout)``. Intercepting that single call is the
    entire virtual-time mechanism: advance the loop's clock by
    ``timeout`` and report "no I/O events".
    """

    def __init__(self, inner, loop: "VirtualTimeLoop"):
        self._inner = inner
        self._loop = loop

    def select(self, timeout: Optional[float] = None):
        if timeout is None:
            raise SimulationDeadlockError(
                "virtual-time deadlock: every task is blocked on an "
                "event that is neither ready nor scheduled on the "
                "virtual clock (e.g. a Queue.get or Future that nothing "
                "will ever complete)"
            )
        if timeout > 0:
            self._loop._virtual_now += timeout
        return []

    def __getattr__(self, name):
        # register/unregister/get_map/close/... pass through untouched.
        return getattr(self._inner, name)


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock is virtual and auto-advancing.

    Only for in-process simulation: real sockets registered on this loop
    will never be polled (the selector never actually selects). All
    serving-layer components are pure coroutines, so nothing is lost —
    and everything timed becomes deterministic.
    """

    def __init__(self, start: float = 0.0):
        super().__init__()
        self._virtual_now = float(start)
        self._selector = _AutoAdvanceSelector(self._selector, self)

    def time(self) -> float:
        return self._virtual_now


async def cancel_and_wait(task: "asyncio.Task") -> None:
    """Cancel ``task`` and wait until it has fully unwound.

    The hedged-request primitive: the losing probe of a first-wins race
    must be *gone* — its cancellation delivered, its ``finally`` blocks
    (slot releases, breaker bookkeeping) executed — before the winner's
    result is returned, or the next virtual-time step would race against
    a half-dead coroutine. The loser's own outcome is irrelevant: a
    late success is discarded and a late failure already lost the race,
    so both are swallowed here.
    """
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        pass
    except Exception:
        pass  # the loser's own failure; the race already has a winner


def _cancel_pending(loop: asyncio.AbstractEventLoop) -> None:
    """Cancel and drain whatever tasks are still alive on ``loop``."""
    pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(
        asyncio.gather(*pending, return_exceptions=True)
    )


def run_virtual(main: Awaitable[T], start: float = 0.0) -> T:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`.

    The virtual-time sibling of :func:`asyncio.run`: however much
    simulated time ``main`` sleeps through, the call returns in the wall
    time the computation itself takes. Pending tasks are cancelled and
    the loop closed on the way out, success or failure.
    """
    loop = VirtualTimeLoop(start)
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_pending(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


class SimulationHarness:
    """One persistent virtual timeline for multi-step tests.

    ``run`` executes a coroutine on the harness's loop; virtual time
    carries over between calls, so a stateful test can serve requests,
    kill a replica, let a breaker's ``reset_timeout`` elapse with
    ``run(asyncio.sleep(t))``, and observe recovery — all on one clock.
    Context-manager protocol closes the loop (and cancels stragglers).
    """

    def __init__(self, start: float = 0.0):
        self.loop = VirtualTimeLoop(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.loop.time()

    def run(self, coro: Awaitable[T]) -> T:
        return self.loop.run_until_complete(coro)

    def advance(self, seconds: float) -> None:
        """Let ``seconds`` of virtual time elapse (e.g. to expire a
        breaker's ``reset_timeout`` or an admission window)."""
        self.run(asyncio.sleep(seconds))

    def close(self) -> None:
        if self.loop.is_closed():
            return
        try:
            _cancel_pending(self.loop)
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        finally:
            self.loop.close()

    def __enter__(self) -> "SimulationHarness":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
