"""Admission control: shed excess load explicitly, never drop it.

During a flash crowd the edge saturates: the home replica's slots and
queue fill, probes bounce with
:class:`~repro.errors.ReplicaOverloadedError`, and retries amplify the
very load that caused the problem. The classic remedy sits *in front of*
the controller: an admission gate that measures load and rejects a
deterministic, priority-aware fraction of requests before they consume
slots, retries, or origin bandwidth.

Two properties are non-negotiable here and enforced by the stateful test
suite:

- **served-or-shed exactly once** — every call to
  :meth:`AdmissionController.get` returns exactly one outcome, either
  the controller's :class:`~repro.serving.controller.ServeResult` or a
  :class:`ShedResult`. Nothing is silently dropped; shed requests are
  first-class, counted, and carry the reason and load level that shed
  them (discriminate on the ``.shed`` attribute, present on both).
- **determinism** — shedding probability draws come from a keyed BLAKE2
  hash of ``(seed, draw counter, virtual now)``, the same discipline as
  :class:`~repro.resilience.RetryPolicy` jitter and the fault injector,
  so a fixed seed on the virtual clock replays the same shed decisions
  run after run.

Priorities are small ints, lowest = most important: ``INTERACTIVE`` (a
viewer pressing play) sheds last, ``BACKGROUND`` (prefetch, re-warm
traffic) sheds first. Each priority has its own load threshold; between
threshold and saturation the shed probability ramps linearly, so load
shedding engages gradually instead of cliff-edging.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Dict, Mapping, Optional

from repro.errors import ConfigError, RequestShedError
from repro.resilience import _unit_uniform
from repro.serving.controller import Controller, ServeResult
from repro.serving.simtime import running_loop_time

#: Request priorities, lowest number = most important (shed last).
INTERACTIVE = 0
STANDARD = 1
BACKGROUND = 2

PRIORITY_NAMES: Dict[int, str] = {
    INTERACTIVE: "interactive",
    STANDARD: "standard",
    BACKGROUND: "background",
}

#: Default per-priority load thresholds: the load factor above which
#: that priority starts shedding. Background yields early, interactive
#: holds out until the edge is nearly saturated.
DEFAULT_THRESHOLDS: Dict[int, float] = {
    INTERACTIVE: 0.98,
    STANDARD: 0.85,
    BACKGROUND: 0.60,
}


@dataclass(frozen=True)
class ShedResult:
    """The other half of served-or-shed: an explicit, counted rejection.

    Mirrors :class:`~repro.serving.controller.ServeResult` closely
    enough that trace drivers can treat the two uniformly — both carry
    ``video_id``/``country`` and a ``shed`` discriminator.
    """

    video_id: str
    country: str
    priority: int
    reason: str
    load: float

    shed: ClassVar[bool] = True

    @property
    def hit(self) -> bool:
        """A shed request hit nothing."""
        return False


@dataclass
class AdmissionStats:
    """Gate-level counters; ``offered == served + shed + errors`` always."""

    offered: int = 0
    admitted: int = 0
    served: int = 0
    shed: int = 0
    errors: int = 0
    shed_interactive: int = 0
    shed_standard: int = 0
    shed_background: int = 0

    @property
    def goodput(self) -> float:
        """Served / offered — the availability number the S3 gate reads."""
        if self.offered == 0:
            return 0.0
        return self.served / self.offered

    @property
    def shed_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def copy(self) -> "AdmissionStats":
        return replace(self)

    def delta(self, since: "AdmissionStats") -> "AdmissionStats":
        return AdmissionStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )


class AdmissionPolicy:
    """When to shed: per-priority thresholds with a linear ramp.

    ``decide(load, priority, now)`` is pure given the draw counter: below
    the priority's threshold everything is admitted; at or above load
    1.0 everything is shed (``"saturated"``); in between, the shed
    probability ramps linearly from 0 to 1 across the remaining load
    range, decided by a deterministic seeded draw (``"overload"``).

    Args:
        max_inflight: Gate-level concurrency bound — an independent
            brake on requests inside the controller at once, feeding
            the load signal even when replicas are unbounded.
        thresholds: Priority → load threshold overrides; unlisted
            priorities inherit :data:`DEFAULT_THRESHOLDS` (unknown
            priorities use the background threshold — shed first).
        seed: Determinism key for the shed-probability draws.
    """

    def __init__(
        self,
        max_inflight: int = 256,
        thresholds: Optional[Mapping[int, float]] = None,
        seed: int = 0,
    ):
        if max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        merged = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            merged.update(thresholds)
        for priority, value in merged.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"threshold for priority {priority} must be in [0, 1], "
                    f"got {value}"
                )
        self.max_inflight = max_inflight
        self.thresholds = merged
        self.seed = seed
        self._draws = 0

    def threshold(self, priority: int) -> float:
        return self.thresholds.get(
            priority, self.thresholds.get(BACKGROUND, 0.6)
        )

    def decide(self, load: float, priority: int, now: float) -> Optional[str]:
        """None = admit; otherwise the shed reason (``"saturated"`` or
        ``"overload"``). Every probabilistic decision consumes one draw
        from the seeded stream, keyed on the virtual clock."""
        limit = self.threshold(priority)
        if load < limit:
            return None
        if load >= 1.0:
            return "saturated"
        self._draws += 1
        ramp = (load - limit) / (1.0 - limit)
        draw = _unit_uniform(f"{self.seed}:{self._draws}:{round(now, 6)}")
        if draw < ramp:
            return "overload"
        return None


class AdmissionController:
    """The gate in front of :meth:`Controller.get`.

    Load signal is the max of three saturation measures:

    - the requester's home-replica
      :meth:`~repro.serving.replica.Replica.load_factor` — slots and
      queue actually occupied (the async, measured view);
    - the gate's own *pending admissions against that home replica*
      over the home's total admittable capacity (slots + queue). This
      is the synchronous early-warning signal: a burst admitted in one
      scheduling instant has not reached the replica's slots yet, but
      the gate already knows it is in flight — without this, a flash
      crowd's whole wave is admitted against an idle-looking replica
      and the shed happens downstream as overload errors instead of
      up front as controlled sheds;
    - the gate's global in-flight count against ``policy.max_inflight``.

    A dead home contributes only the global term — the controller will
    reroute, and shedding on a corpse's stale counters would refuse
    traffic the survivors can serve.

    Args:
        controller: The routing controller being protected.
        policy: Shed policy; defaults to :class:`AdmissionPolicy()`.
        clock: ``() -> float`` now-source for the deterministic draws
            (default: the running loop's virtual clock).
    """

    def __init__(
        self,
        controller: Controller,
        policy: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = running_loop_time,
    ):
        self.controller = controller
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._clock = clock
        self._inflight = 0
        self._home_pending: Dict[str, int] = {}
        self.stats = AdmissionStats()

    @property
    def inflight(self) -> int:
        """Requests currently inside the controller via this gate."""
        return self._inflight

    def load(self, country: str) -> float:
        """The load signal a request from ``country`` is admitted against."""
        home = self.controller.home(country)
        gate_load = self._inflight / self.policy.max_inflight
        if not home.alive:
            return gate_load
        home_load = home.load_factor()
        if home.concurrency is not None:
            pending = self._home_pending.get(home.replica_id, 0)
            capacity = home.concurrency + home.queue_depth
            home_load = max(home_load, pending / capacity)
        return max(home_load, gate_load)

    def _count_shed(self, priority: int) -> None:
        self.stats.shed += 1
        if priority <= INTERACTIVE:
            self.stats.shed_interactive += 1
        elif priority == STANDARD:
            self.stats.shed_standard += 1
        else:
            self.stats.shed_background += 1

    async def get(
        self,
        video_id: str,
        country: str,
        priority: int = STANDARD,
        raise_on_shed: bool = False,
    ):
        """Serve or shed, exactly once.

        Returns a :class:`~repro.serving.controller.ServeResult` when
        admitted and served, or a :class:`ShedResult` when shed (unless
        ``raise_on_shed``, for callers who prefer
        :class:`~repro.errors.RequestShedError`). A controller failure
        after admission propagates — and is counted in ``errors`` so the
        offered == served + shed + errors ledger still balances.
        """
        self.stats.offered += 1
        load = self.load(country)
        reason = self.policy.decide(load, priority, self._clock())
        if reason is not None:
            self._count_shed(priority)
            if raise_on_shed:
                raise RequestShedError(
                    f"request for {video_id!r} from {country!r} shed "
                    f"({reason}, load {load:.3f}, "
                    f"priority {PRIORITY_NAMES.get(priority, priority)})"
                )
            return ShedResult(
                video_id=video_id,
                country=country,
                priority=priority,
                reason=reason,
                load=load,
            )
        self.stats.admitted += 1
        self._inflight += 1
        home_id = self.controller.home(country).replica_id
        self._home_pending[home_id] = self._home_pending.get(home_id, 0) + 1
        try:
            result = await self.controller.get(video_id, country)
        except BaseException:
            self.stats.errors += 1
            raise
        finally:
            self._inflight -= 1
            self._home_pending[home_id] -= 1
        self.stats.served += 1
        return result
