"""Warm-placement planners: what each replica holds before traffic.

A planner looks at the catalogue and the replica fleet and produces a
*placement plan* — ``{replica_id: [video_id, ...]}`` — that the
controller pushes before serving starts. The three planners mirror the
policy families the offline placement benchmark compares, recast for a
replica fleet:

- :class:`ReactiveOnlyPlanner` — push nothing; caches fill purely from
  misses (the deployed-default baseline);
- :class:`RoundRobinPlanner` — deal the most-viewed videos across
  replicas in rotation, blind to geography (the architecture baseline —
  this is what the snippet-style controller did);
- :class:`TagAwarePlanner` — the paper's proposal operationalized: for
  each video, predict its per-country view shares from its tags
  (Eq. (3) mixture), aggregate the predicted demand onto each country's
  *nearest replica*, and give every replica the videos it is predicted
  to serve most;
- :class:`AdaptiveTagPlanner` — the tag planner with a feedback loop:
  it observes the countries actually requesting, reweights the Eq. (3)
  demand toward where traffic *is* (flash crowds), and plans only over
  replicas that are still alive (regional blackouts) — so a re-warm
  after chaos pushes the lost region's catalogue onto the survivors
  nearest the shifted demand.

Plans are deterministic: ties break on video id / replica id, never on
hash order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datamodel.dataset import Dataset
from repro.errors import ServingError
from repro.placement.predictor import TagGeoPredictor
from repro.serving.replica import Replica
from repro.world.geo import distance_matrix


class ServingPlanner:
    """Interface: build a placement plan for a replica fleet."""

    #: Human-readable planner name (subclasses override).
    name = "abstract"

    def plan(
        self,
        catalogue: Dataset,
        replicas: Sequence[Replica],
        capacity: int,
    ) -> Dict[str, List[str]]:
        """``{replica_id: ordered video ids}``, each list ≤ ``capacity``."""
        raise NotImplementedError

    @staticmethod
    def _check(replicas: Sequence[Replica], capacity: int) -> List[Replica]:
        if capacity < 0:
            raise ServingError(f"capacity must be >= 0, got {capacity}")
        fleet = list(replicas)
        if not fleet:
            raise ServingError("cannot plan for an empty replica fleet")
        return fleet


class ReactiveOnlyPlanner(ServingPlanner):
    """Push nothing: caches start cold and fill reactively."""

    name = "reactive"

    def plan(self, catalogue, replicas, capacity):
        fleet = self._check(replicas, capacity)
        return {replica.replica_id: [] for replica in fleet}


class RoundRobinPlanner(ServingPlanner):
    """Deal globally popular videos across replicas in rotation.

    Geography-blind: replica *k* gets the (k, k+R, k+2R, ...)-th most
    viewed videos. Every replica ends up with a popularity-stratified
    slice of the catalogue regardless of where its viewers are.
    """

    name = "round-robin"

    def plan(self, catalogue, replicas, capacity):
        fleet = self._check(replicas, capacity)
        ranked = sorted(
            catalogue, key=lambda video: (-video.views, video.video_id)
        )
        plan: Dict[str, List[str]] = {
            replica.replica_id: [] for replica in fleet
        }
        position = 0
        for video in ranked:
            if all(len(vids) >= capacity for vids in plan.values()):
                break
            for _ in range(len(fleet)):
                target = plan[fleet[position % len(fleet)].replica_id]
                position += 1
                if len(target) < capacity:
                    target.append(video.video_id)
                    break
        return plan


class TagAwarePlanner(ServingPlanner):
    """Place each video where its tags predict its viewers are.

    For video *v* with predicted share vector *s_v* (Eq. (3) tag
    mixture, worldwide prior on cold start) and total views *V_v*, the
    demand replica *r* would absorb is ``d_r(v) = V_v · Σ_{c → r}
    s_v[c]`` where *c → r* means replica *r* is the nearest replica to
    country *c* (centroid distance — the same geography the serving
    report scores against). Each video nominates its top
    ``replicas_per_video`` replicas by demand; each replica keeps its
    ``capacity`` highest-demand nominations.

    Budgeting is a single global greedy pass: all (video, replica)
    candidates compete on *discounted* demand — a video's k-th copy is
    worth ``copy_discount^k`` of its raw demand — so a second copy of a
    popular video must beat the *first* copy of a less popular one.
    This trades locality against catalogue coverage explicitly instead
    of letting duplicates silently crowd out coverage.

    Args:
        predictor: Tag → geography predictor (Eq. (3) table).
        replicas_per_video: Candidate copies per video before capacity
            budgeting (≥ 1).
        copy_discount: Multiplier applied per additional copy of the
            same video, in (0, 1].
    """

    name = "tags"

    def __init__(
        self,
        predictor: TagGeoPredictor,
        replicas_per_video: int = 2,
        copy_discount: float = 0.5,
    ):
        if replicas_per_video < 1:
            raise ServingError(
                f"replicas_per_video must be >= 1, got {replicas_per_video}"
            )
        if not 0.0 < copy_discount <= 1.0:
            raise ServingError(
                f"copy_discount must be in (0, 1], got {copy_discount}"
            )
        self.predictor = predictor
        self.replicas_per_video = replicas_per_video
        self.copy_discount = copy_discount
        # Predictions are a pure function of (catalogue, fleet), so the
        # scored candidate list is memoized across periodic re-warms.
        self._cache_key = None
        self._cache_candidates: List[Tuple[float, str, str]] = []

    def plan(self, catalogue, replicas, capacity):
        fleet = self._check(replicas, capacity)
        cache_key = (
            id(catalogue),
            len(catalogue),
            tuple((replica.replica_id, replica.country) for replica in fleet),
        )
        if cache_key == self._cache_key:
            candidates = self._cache_candidates
        else:
            candidates = self._score(catalogue, fleet)
            self._cache_key = cache_key
            self._cache_candidates = candidates

        return self._fill(candidates, fleet, capacity)

    @staticmethod
    def _fill(
        candidates: Sequence[Tuple[float, str, str]],
        fleet: Sequence[Replica],
        capacity: int,
    ) -> Dict[str, List[str]]:
        """Global greedy: best-scored candidates claim capacity first."""
        plan: Dict[str, List[str]] = {
            replica.replica_id: [] for replica in fleet
        }
        for score, video_id, replica_id in candidates:
            target = plan[replica_id]
            if len(target) < capacity:
                target.append(video_id)
        return plan

    def _score(
        self,
        catalogue,
        fleet,
        weights: Optional[np.ndarray] = None,
    ) -> List[Tuple[float, str, str]]:
        registry = self.predictor.registry
        codes = registry.codes()
        code_index = {code: i for i, code in enumerate(codes)}
        for replica in fleet:
            if replica.country not in code_index:
                raise ServingError(
                    f"replica {replica.replica_id!r} in unknown country "
                    f"{replica.country!r}"
                )

        # Country → nearest replica, as a (replicas × countries) 0/1
        # aggregation matrix. Ties break on fleet order (stable argmin).
        distances = distance_matrix(registry)
        replica_columns = [code_index[replica.country] for replica in fleet]
        to_replica = distances[:, replica_columns]  # (C, R)
        nearest = np.argmin(to_replica, axis=1)  # (C,)
        aggregate = np.zeros((len(fleet), len(codes)))
        aggregate[nearest, np.arange(len(codes))] = 1.0

        # Each video's k-th best replica (by predicted absorbed demand)
        # becomes a candidate worth demand · discount^k. ``weights``
        # (registry-ordered, per-country) tilts the predicted shares
        # toward observed demand before aggregation.
        candidates: List[Tuple[float, str, str]] = []
        for video in catalogue:
            shares = self.predictor.predict_shares(video)
            if weights is not None:
                shares = shares * weights
            demand = aggregate @ shares * float(video.views)  # (R,)
            order = np.argsort(-demand, kind="stable")[: self.replicas_per_video]
            for copy, position in enumerate(order):
                score = float(demand[int(position)]) * self.copy_discount**copy
                if score <= 0.0:
                    continue
                candidates.append(
                    (score, video.video_id, fleet[int(position)].replica_id)
                )

        candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
        return candidates


class AdaptiveTagPlanner(TagAwarePlanner):
    """The tag planner that re-plans against demand *as observed*.

    The static :class:`TagAwarePlanner` answers "where will this video's
    viewers be, according to its tags?" — a prior. This subclass folds in
    the posterior: the cluster feeds it every requesting country via
    :meth:`observe_request`, and at the next ``plan()`` (a periodic
    re-warm, or one forced by a chaos event):

    - the fleet is filtered to **live replicas only**, so a blacked-out
      region's share of the catalogue is re-placed onto survivors
      instead of being pushed at corpses;
    - predicted per-country shares are multiplied by ``1 +
      demand_boost · observed_share(country)``, so a flash crowd's
      country pulls its videos toward its nearest surviving replica;
    - the observation vector then decays by ``decay``, so the boost
      follows the crowd instead of remembering it forever.

    With no observations and a fully live fleet it degrades to exactly
    the static plan (and reuses its memoized candidates).

    Args:
        demand_boost: Strength of the observed-demand tilt (0 disables).
        decay: Multiplier applied to the observation vector after each
            plan, in [0, 1].
    """

    name = "tags-adaptive"

    def __init__(
        self,
        predictor,
        replicas_per_video: int = 2,
        copy_discount: float = 0.5,
        demand_boost: float = 4.0,
        decay: float = 0.5,
    ):
        super().__init__(
            predictor,
            replicas_per_video=replicas_per_video,
            copy_discount=copy_discount,
        )
        if demand_boost < 0:
            raise ServingError(
                f"demand_boost must be >= 0, got {demand_boost}"
            )
        if not 0.0 <= decay <= 1.0:
            raise ServingError(f"decay must be in [0, 1], got {decay}")
        self.demand_boost = demand_boost
        self.decay = decay
        codes = predictor.registry.codes()
        self._code_index = {code: i for i, code in enumerate(codes)}
        self._observed = np.zeros(len(codes))
        self.replans = 0

    def observe_request(self, country: str) -> None:
        """Record one offered request's origin country (cheap, O(1))."""
        index = self._code_index.get(country)
        if index is not None:
            self._observed[index] += 1.0

    def observe_demand(self, weights) -> None:
        """Fold a whole per-country demand vector into the observations.

        The batch counterpart of :meth:`observe_request` — pre-warm
        hints land here. The intended feeder is a trending detector's
        :meth:`~repro.analysis.trending.TrendingDetector.demand_vector`
        (decayed per-country view-delta rates), so the next re-warm
        tilts placement toward where views are *moving*, before the
        requests themselves arrive. ``weights`` must align with the
        predictor registry's country order and be nonnegative; the
        caller chooses the scale (weights compete with raw request
        counts under the shared ``demand_boost`` normalization).
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self._observed.shape:
            raise ServingError(
                f"demand vector has shape {weights.shape}, expected "
                f"{self._observed.shape} (one weight per registry country)"
            )
        if not np.all(np.isfinite(weights)) or np.any(weights < 0.0):
            raise ServingError(
                "demand vector must be finite and nonnegative"
            )
        self._observed += weights

    @property
    def observed_total(self) -> float:
        """Un-decayed weight of observations currently influencing plans."""
        return float(self._observed.sum())

    def plan(self, catalogue, replicas, capacity):
        fleet = self._check(replicas, capacity)
        alive = [replica for replica in fleet if replica.alive]
        if alive:
            fleet = alive  # plan only onto replicas that can take a push
        self.replans += 1
        total = float(self._observed.sum())
        if total > 0.0 and self.demand_boost > 0.0:
            weights = 1.0 + self.demand_boost * (self._observed / total)
            candidates = self._score(catalogue, fleet, weights=weights)
            plan = self._fill(candidates, fleet, capacity)
        else:
            plan = super().plan(catalogue, fleet, capacity)
        self._observed *= self.decay
        return plan
