"""An edge replica: one country's cache, servable and killable.

A replica wraps one :class:`~repro.placement.cache.EdgeCache` (any
flavour — LRU, LFU, or pin-only static) behind an async interface with
simulated network latency, and adds the two things a *running* service
needs that the offline simulator did not:

- **liveness** — ``fail()`` / ``recover()`` flip the replica dead and
  alive; a dead replica raises
  :class:`~repro.errors.ReplicaDownError` (a ``TransportError``, so
  retry policies and circuit breakers treat it like a dead peer);
- **transient flakiness** — an optional deterministic
  :class:`~repro.api.faults.FaultInjector` makes a fraction of calls
  raise :class:`~repro.errors.TransientAPIError`, which the
  controller's retry policy absorbs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Set

from repro.api.faults import FaultInjector
from repro.errors import ReplicaDownError, ServingError
from repro.placement.cache import EdgeCache


@dataclass
class ReplicaStats:
    """Serving counters for one replica (cache counters live on the
    cache's own :class:`~repro.placement.cache.CacheStats`)."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    pushes: int = 0
    rejected: int = 0  # calls refused while down


class Replica:
    """One edge node: ``get`` looks up the cache, ``push`` pre-places.

    Args:
        replica_id: Stable identifier (e.g. ``edge-BR``).
        country: The country whose viewers this replica is local to.
        cache: Storage + eviction policy (one of
            :mod:`repro.placement.cache`).
        latency_seconds: Simulated per-call latency.
        fault_injector: Optional deterministic transient-fault source.
    """

    def __init__(
        self,
        replica_id: str,
        country: str,
        cache: EdgeCache,
        latency_seconds: float = 0.01,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if latency_seconds < 0:
            raise ServingError(
                f"latency_seconds must be >= 0, got {latency_seconds}"
            )
        self.replica_id = replica_id
        self.country = country
        self.cache = cache
        self.latency_seconds = latency_seconds
        self.fault_injector = fault_injector
        self.stats = ReplicaStats()
        self._alive = True

    # -- liveness ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Take the replica offline (chaos hook)."""
        self._alive = False

    def recover(self) -> None:
        """Bring the replica back; its cache contents survive the outage."""
        self._alive = True

    def _check_up(self, operation: str) -> None:
        if not self._alive:
            self.stats.rejected += 1
            raise ReplicaDownError(
                f"replica {self.replica_id!r} is down ({operation})"
            )

    # -- serving -------------------------------------------------------------

    async def get(self, video_id: str) -> bool:
        """Cache lookup; True on hit. Raises when down or (injected) flaky."""
        self._check_up("get")
        if self.fault_injector is not None:
            self.fault_injector.before_request(f"get {video_id}")
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
        self.stats.gets += 1
        hit = self.cache.request(video_id)
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    async def push(self, video_id: str) -> None:
        """Proactively place a copy (the controller's placement path)."""
        self._check_up("push")
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
        self.cache.pin(video_id)
        self.stats.pushes += 1

    def admit(self, video_id: str) -> None:
        """Reactive insert after an origin fetch (no extra round trip —
        the copy rides back on the response)."""
        if self._alive:
            self.cache.admit(video_id)

    def contents(self) -> Set[str]:
        """Snapshot of cached ids (for invariant checks)."""
        return self.cache.contents()

    def __repr__(self) -> str:
        state = "up" if self._alive else "down"
        return (
            f"Replica({self.replica_id!r}, {self.country!r}, "
            f"{len(self.cache)}/{self.cache.capacity} cached, {state})"
        )
