"""An edge replica: one country's cache, servable, killable, saturable.

A replica wraps one :class:`~repro.placement.cache.EdgeCache` (any
flavour — LRU, LFU, or pin-only static) behind an async interface with
simulated network latency, and adds the things a *running* service
needs that the offline simulator did not:

- **liveness** — ``fail()`` / ``recover()`` flip the replica dead and
  alive; a dead replica raises
  :class:`~repro.errors.ReplicaDownError` (a ``TransportError``, so
  retry policies and circuit breakers treat it like a dead peer).
  ``fail()`` bumps an internal *epoch*: calls already in flight when
  the replica dies observe the epoch change at their next await point
  and are rejected deterministically — no phantom hits, no counters
  mutated by a call the failed machine could never have answered;
- **bounded capacity** — an optional M/M/c-style concurrency model on
  virtual time: at most ``concurrency`` requests are *in service* (each
  occupying a slot for ``service_seconds``), up to ``queue_depth`` more
  wait FIFO for a slot, and anything beyond that is rejected with
  :class:`~repro.errors.ReplicaOverloadedError`. Queueing delay is real
  (virtual) time, so a saturated replica visibly slows and sheds — the
  overload signal admission control and hedging react to;
- **health reporting** — :meth:`health` is the utilization snapshot the
  admission controller reads synchronously; :meth:`ping` is the cheap
  active probe the controller fires to feed circuit breakers without
  burning user requests (it pays network latency but no service slot);
- **transient flakiness** — an optional deterministic
  :class:`~repro.api.faults.FaultInjector` makes a fraction of calls
  raise :class:`~repro.errors.TransientAPIError`, which the
  controller's retry policy absorbs.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Set

from repro.api.faults import FaultInjector
from repro.errors import (
    ReplicaDownError,
    ReplicaOverloadedError,
    ServingError,
)
from repro.placement.cache import EdgeCache


@dataclass
class ReplicaStats:
    """Serving counters for one replica (cache counters live on the
    cache's own :class:`~repro.placement.cache.CacheStats`)."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    pushes: int = 0
    pings: int = 0
    rejected: int = 0  # calls refused up front while down
    rejected_overload: int = 0  # calls shed because slots + queue were full
    queued: int = 0  # calls that had to wait for a service slot
    killed_in_flight: int = 0  # in-flight calls rejected by fail()
    peak_inflight: int = 0  # high-water mark of occupied service slots


@dataclass(frozen=True)
class ReplicaHealth:
    """Utilization snapshot: what admission control and probes see.

    Attributes:
        utilization: Occupied service slots / ``concurrency`` (0.0 for
            an unbounded replica — it can always absorb more).
        load_factor: (in service + waiting) / (slots + queue): 1.0
            means the next request is shed. 0.0 for unbounded replicas.
    """

    replica_id: str
    alive: bool
    inflight: int
    waiting: int
    concurrency: Optional[int]
    queue_depth: int
    utilization: float
    load_factor: float

    @property
    def saturated(self) -> bool:
        """True when the next request would be rejected for overload."""
        return self.load_factor >= 1.0


class Replica:
    """One edge node: ``get`` looks up the cache, ``push`` pre-places.

    Args:
        replica_id: Stable identifier (e.g. ``edge-BR``).
        country: The country whose viewers this replica is local to.
        cache: Storage + eviction policy (one of
            :mod:`repro.placement.cache`).
        latency_seconds: Simulated network round-trip per call.
        concurrency: Max requests in service at once; ``None`` (default)
            models infinite capacity (the pre-overload behaviour).
        queue_depth: Waiting-room size once all slots are busy; beyond
            it, calls are rejected with ``ReplicaOverloadedError``.
            Only meaningful with bounded ``concurrency``.
        service_seconds: Virtual time a request occupies its slot
            (default 0.0: lookups are instantaneous once admitted, so
            bounded replicas only queue when configured to take time).
        fault_injector: Optional deterministic transient-fault source.
    """

    def __init__(
        self,
        replica_id: str,
        country: str,
        cache: EdgeCache,
        latency_seconds: float = 0.01,
        concurrency: Optional[int] = None,
        queue_depth: int = 0,
        service_seconds: float = 0.0,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if latency_seconds < 0:
            raise ServingError(
                f"latency_seconds must be >= 0, got {latency_seconds}"
            )
        if concurrency is not None and concurrency < 1:
            raise ServingError(
                f"concurrency must be >= 1 (or None), got {concurrency}"
            )
        if queue_depth < 0:
            raise ServingError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if service_seconds < 0:
            raise ServingError(
                f"service_seconds must be >= 0, got {service_seconds}"
            )
        self.replica_id = replica_id
        self.country = country
        self.cache = cache
        self.latency_seconds = latency_seconds
        self.concurrency = concurrency
        self.queue_depth = queue_depth
        self.service_seconds = service_seconds
        self.fault_injector = fault_injector
        self.stats = ReplicaStats()
        self._alive = True
        self._epoch = 0
        self._inflight = 0
        self._waiters: Deque[asyncio.Future] = deque()

    # -- liveness ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Take the replica offline (chaos hook).

        Deterministic teardown: the epoch bump makes every in-flight
        call reject itself at its next await point (their counters stay
        untouched — the lookup never completed), and every queued waiter
        is failed immediately with :class:`ReplicaDownError`. Service
        slots reset; stale completions from the previous epoch cannot
        release slots of the new one.
        """
        self._alive = False
        self._epoch += 1
        self._inflight = 0
        waiters, self._waiters = self._waiters, deque()
        for waiter in waiters:
            if not waiter.done():
                self.stats.killed_in_flight += 1
                waiter.set_exception(
                    ReplicaDownError(
                        f"replica {self.replica_id!r} went down while the "
                        "request was queued"
                    )
                )

    def recover(self, cold: bool = False) -> None:
        """Bring the replica back.

        By default the cache contents survive the outage (a network
        partition healed). ``cold=True`` models a process restart after
        a regional blackout: the machine comes back *empty*, and whoever
        wants it useful again must re-warm it or pay reactive misses.
        """
        if cold:
            self.cache.clear()
        self._alive = True

    def _check_up(self, operation: str) -> None:
        if not self._alive:
            self.stats.rejected += 1
            raise ReplicaDownError(
                f"replica {self.replica_id!r} is down ({operation})"
            )

    def _check_in_flight(self, epoch: int, operation: str) -> None:
        """Reject a call whose replica died under it, deterministically."""
        if epoch != self._epoch or not self._alive:
            self.stats.killed_in_flight += 1
            raise ReplicaDownError(
                f"replica {self.replica_id!r} went down mid-{operation}"
            )

    # -- capacity model ------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Requests currently occupying a service slot."""
        return self._inflight

    @property
    def waiting(self) -> int:
        """Requests queued for a service slot."""
        return len(self._waiters)

    @property
    def utilization(self) -> float:
        """Occupied service slots as a fraction (0.0 when unbounded)."""
        if self.concurrency is None:
            return 0.0
        return self._inflight / self.concurrency

    def load_factor(self) -> float:
        """(in service + waiting) / total admittable; 1.0 = next is shed."""
        if self.concurrency is None:
            return 0.0
        total = self.concurrency + self.queue_depth
        return (self._inflight + len(self._waiters)) / total

    def health(self) -> ReplicaHealth:
        """Synchronous utilization snapshot (no latency, no side effects)."""
        return ReplicaHealth(
            replica_id=self.replica_id,
            alive=self._alive,
            inflight=self._inflight,
            waiting=len(self._waiters),
            concurrency=self.concurrency,
            queue_depth=self.queue_depth,
            utilization=self.utilization,
            load_factor=self.load_factor(),
        )

    async def _acquire_slot(self) -> bool:
        """Take a service slot, queueing FIFO; True when a slot is held.

        Raises :class:`ReplicaOverloadedError` when both slots and queue
        are full — the caller was *shed*, visibly, never silently
        dropped. Unbounded replicas return False (nothing to release).
        """
        if self.concurrency is None:
            return False
        if self._inflight < self.concurrency:
            self._inflight += 1
            if self._inflight > self.stats.peak_inflight:
                self.stats.peak_inflight = self._inflight
            return True
        if len(self._waiters) >= self.queue_depth:
            self.stats.rejected_overload += 1
            raise ReplicaOverloadedError(
                f"replica {self.replica_id!r} saturated: "
                f"{self._inflight} in service, {len(self._waiters)} queued"
            )
        waiter = asyncio.get_event_loop().create_future()
        self._waiters.append(waiter)
        self.stats.queued += 1
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled() and waiter.exception() is None:
                # The slot was handed over in the same instant we were
                # cancelled: pass it on instead of leaking it.
                self._release_slot()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            raise
        return True

    def _release_slot(self) -> None:
        """Hand the slot to the oldest live waiter, else free it."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
        self._inflight -= 1

    # -- serving -------------------------------------------------------------

    async def get(self, video_id: str) -> bool:
        """Cache lookup; True on hit.

        Raises when down, killed mid-flight, overloaded, or (injected)
        flaky. Counters are only touched by calls that *complete*: a
        call rejected mid-flight leaves ``gets``/``hits``/``misses``
        untouched and the cache unread (no phantom hits).
        """
        self._check_up("get")
        if self.fault_injector is not None:
            self.fault_injector.before_request(f"get {video_id}")
        epoch = self._epoch
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
            self._check_in_flight(epoch, "get")
        held = await self._acquire_slot()
        try:
            if self.service_seconds > 0:
                await asyncio.sleep(self.service_seconds)
            self._check_in_flight(epoch, "get")
            self.stats.gets += 1
            hit = self.cache.request(video_id)
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            return hit
        finally:
            # Only release into the epoch the slot was taken from:
            # fail() already reset the slot accounting for a new epoch.
            if held and epoch == self._epoch:
                self._release_slot()

    async def push(self, video_id: str) -> None:
        """Proactively place a copy (the controller's placement path).

        A push interrupted by ``fail()`` rejects without pinning: the
        copy never landed on the dead machine, so neither the cache nor
        ``pushes`` may claim it did.
        """
        self._check_up("push")
        epoch = self._epoch
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
            self._check_in_flight(epoch, "push")
        self.cache.pin(video_id)
        self.stats.pushes += 1

    async def ping(self) -> ReplicaHealth:
        """Active health probe: pays network latency, no service slot.

        The controller's probe loop calls this to feed per-replica
        circuit breakers — a dead replica fails the ping (opening /
        keeping open its breaker), a live one reports utilization and,
        through the breaker's half-open path, closes it again after an
        outage without burning a user request on the experiment.
        """
        self._check_up("ping")
        epoch = self._epoch
        if self.latency_seconds > 0:
            await asyncio.sleep(self.latency_seconds)
            self._check_in_flight(epoch, "ping")
        self.stats.pings += 1
        return self.health()

    def admit(self, video_id: str) -> None:
        """Reactive insert after an origin fetch (no extra round trip —
        the copy rides back on the response)."""
        if self._alive:
            self.cache.admit(video_id)

    def contents(self) -> Set[str]:
        """Snapshot of cached ids (for invariant checks)."""
        return self.cache.contents()

    def __repr__(self) -> str:
        state = "up" if self._alive else "down"
        if self.concurrency is not None:
            state += f", {self._inflight}/{self.concurrency} busy"
        return (
            f"Replica({self.replica_id!r}, {self.country!r}, "
            f"{len(self.cache)}/{self.cache.capacity} cached, {state})"
        )
