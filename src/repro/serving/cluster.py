"""EdgeCluster: one-stop assembly of origin + controller + replicas.

This is the level benchmarks and tests talk to: build a cluster from a
catalogue and a list of replica countries, ``warm()`` it with a
planner's placement plan, then ``serve_trace()`` a workload and read a
:class:`ServingReport` (hit ratio, serving-distance percentiles, origin
load, resilience counters).

Chaos is first-class: a :class:`ChaosSchedule` kills and revives
replicas at named request indices, deterministically, so "k of N edges
die mid-workload" is one reproducible test case rather than a flaky
thread race. :meth:`ChaosSchedule.regional_blackout` scripts the
hardest failure the roadmap calls for — every replica in a region goes
dark at once, recovering staggered — and
:func:`inject_flash_crowd` splices regional demand spikes into a base
trace, so "a video goes viral in one country while its region's edge is
down" is a single deterministic experiment.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datamodel.dataset import Dataset
from repro.errors import ServingError
from repro.placement.cache import EdgeCache, LRUCache
from repro.placement.workload import Request
from repro.resilience import CircuitBreaker, RetryPolicy, _unit_uniform
from repro.serving.admission import (
    STANDARD,
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
)
from repro.serving.controller import Controller, ControllerStats, HedgePolicy
from repro.serving.origin import Origin
from repro.serving.planner import ReactiveOnlyPlanner, ServingPlanner
from repro.serving.replica import Replica
from repro.synth.rng import spawn_rng
from repro.world.countries import CountryRegistry
from repro.world.geo import distance_matrix
from repro.world.traffic import TrafficModel

FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True)
class ChaosAction:
    """Flip one replica's liveness just before request ``at_request``.

    ``cold`` only applies to ``recover`` actions: a cold recovery clears
    the replica's cache (the blackout took the processes down; a healed
    partition would recover warm).
    """

    at_request: int
    action: str  # "fail" | "recover"
    replica_id: str
    cold: bool = False


class ChaosSchedule:
    """An ordered, replayable list of liveness flips.

    ``apply(cluster, i)`` executes every not-yet-applied action with
    ``at_request <= i``; :meth:`reset` rewinds for a second run. The
    schedule is pure data — the same schedule against the same trace is
    the same experiment, every time.
    """

    def __init__(self, actions: Iterable[ChaosAction]):
        self._actions = sorted(
            actions, key=lambda a: (a.at_request, a.replica_id, a.action)
        )
        for action in self._actions:
            if action.action not in (FAIL, RECOVER):
                raise ServingError(
                    f"unknown chaos action {action.action!r}"
                )
            if action.at_request < 0:
                raise ServingError("at_request must be >= 0")
        self._position = 0

    @classmethod
    def kill(
        cls,
        replica_ids: Sequence[str],
        at_request: int,
        recover_at: Optional[int] = None,
    ) -> "ChaosSchedule":
        """Kill ``replica_ids`` at one index, optionally revive later."""
        actions = [
            ChaosAction(at_request, FAIL, rid) for rid in replica_ids
        ]
        if recover_at is not None:
            if recover_at <= at_request:
                raise ServingError("recover_at must come after at_request")
            actions += [
                ChaosAction(recover_at, RECOVER, rid) for rid in replica_ids
            ]
        return cls(actions)

    @classmethod
    def regional_blackout(
        cls,
        replica_regions: Dict[str, str],
        region: str,
        at_request: int,
        recover_at: Optional[int] = None,
        stagger: int = 0,
        cold_recovery: bool = True,
    ) -> "ChaosSchedule":
        """Kill every replica in ``region`` at once; recover staggered.

        ``replica_regions`` maps replica id → region key (see
        :meth:`EdgeCluster.replica_regions`). All of the region's
        replicas fail at ``at_request``; with ``recover_at`` set, the
        i-th replica (id order) recovers at ``recover_at + i·stagger`` —
        real regions come back rack by rack, not all at once, and the
        staggered schedule exercises routing against a half-recovered
        region.

        Blackout recoveries default to *cold* (``cold_recovery=True``):
        a region-wide power loss restarts the edge processes, so the
        replicas come back with empty caches and must be re-warmed —
        exactly the situation an adaptive planner exists for. Pass
        ``cold_recovery=False`` to model a pure network partition whose
        caches survive.
        """
        victims = sorted(
            rid for rid, reg in replica_regions.items() if reg == region
        )
        if not victims:
            raise ServingError(
                f"no replicas in region {region!r} "
                f"(regions present: {sorted(set(replica_regions.values()))})"
            )
        if stagger < 0:
            raise ServingError(f"stagger must be >= 0, got {stagger}")
        actions = [ChaosAction(at_request, FAIL, rid) for rid in victims]
        if recover_at is not None:
            if recover_at <= at_request:
                raise ServingError("recover_at must come after at_request")
            actions += [
                ChaosAction(
                    recover_at + i * stagger, RECOVER, rid, cold=cold_recovery
                )
                for i, rid in enumerate(victims)
            ]
        return cls(actions)

    @classmethod
    def merge(cls, *schedules: "ChaosSchedule") -> "ChaosSchedule":
        """Combine schedules (blackout + extra kills) into one timeline."""
        actions: List[ChaosAction] = []
        for schedule in schedules:
            actions.extend(schedule._actions)
        return cls(actions)

    def __len__(self) -> int:
        return len(self._actions)

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._actions)

    def reset(self) -> None:
        self._position = 0

    def apply(self, cluster: "EdgeCluster", request_index: int) -> int:
        """Execute every due action; returns how many fired (so a trace
        driver can react — e.g. force a re-warm after a chaos event)."""
        applied = 0
        while (
            self._position < len(self._actions)
            and self._actions[self._position].at_request <= request_index
        ):
            action = self._actions[self._position]
            replica = cluster.replica(action.replica_id)
            if action.action == FAIL:
                replica.fail()
            else:
                replica.recover(cold=action.cold)
            self._position += 1
            applied += 1
        return applied


@dataclass(frozen=True)
class FlashCrowdWave:
    """A regional demand spike: one country hammers a few videos.

    Attributes:
        at_request: Base-trace index where the wave starts.
        duration: How many base requests the wave overlaps.
        country: Where the crowd is.
        video_ids: What it wants (the viral set; typically the synth tag
            model's top videos for that country).
        intensity: Extra requests injected per base request inside the
            wave (2.0 = crowd traffic at twice the base rate).
    """

    at_request: int
    duration: int
    country: str
    video_ids: Tuple[str, ...]
    intensity: float

    def __post_init__(self):
        if self.at_request < 0:
            raise ServingError("at_request must be >= 0")
        if self.duration < 1:
            raise ServingError("duration must be >= 1")
        if not self.video_ids:
            raise ServingError("a flash crowd needs at least one video")
        if self.intensity <= 0:
            raise ServingError(
                f"intensity must be > 0, got {self.intensity}"
            )


def inject_flash_crowd(
    base: Iterable[Request],
    waves: Sequence[FlashCrowdWave],
    seed: int = 0,
) -> Iterable[Request]:
    """Splice flash-crowd waves into a base trace, deterministically.

    Inside each wave's ``[at_request, at_request + duration)`` window,
    every base request is followed by ``intensity`` crowd requests
    (fractional intensities accumulate — 0.5 injects one crowd request
    every other base request). Crowd requests pick from the wave's viral
    set via the keyed-hash stream, so the same seed replays the same
    spike. Yields plain :class:`~repro.placement.workload.Request`
    objects; downstream (chaos indices, admission, reports) sees one
    merged trace.
    """
    active = sorted(waves, key=lambda w: (w.at_request, w.country))
    carry = {id(wave): 0.0 for wave in active}
    emitted = 0
    for index, request in enumerate(base):
        yield request
        emitted += 1
        for wave in active:
            if not wave.at_request <= index < wave.at_request + wave.duration:
                continue
            key = id(wave)
            carry[key] += wave.intensity
            while carry[key] >= 1.0:
                carry[key] -= 1.0
                draw = _unit_uniform(f"flash:{seed}:{wave.country}:{emitted}")
                video_id = wave.video_ids[int(draw * len(wave.video_ids))]
                yield Request(video_id=video_id, country=wave.country)
                emitted += 1


@dataclass(frozen=True)
class ServingReport:
    """What one served workload looked like, end to end."""

    planner: str
    requests: int
    local_hits: int
    remote_hits: int
    origin_fetches: int
    failed: int
    #: Edge (home-PoP) hit ratio — the gated number.
    hit_ratio: float
    #: Served by any replica at all (edge or peer PoP).
    replica_hit_ratio: float
    mean_km: float
    p50_km: float
    p99_km: float
    virtual_seconds: float
    retries: int
    reroutes: int
    breaker_opens: int
    placed: int
    #: Overload/failover accounting (all zero for a gate-less,
    #: unhedged trace — pre-overload reports are unchanged).
    offered: int = 0  # requests presented to the admission gate
    shed: int = 0  # requests the gate refused (explicitly, counted)
    goodput: float = 1.0  # served / offered (1.0 with no gate)
    hedges: int = 0  # hedge probes fired
    hedge_wins: int = 0  # requests won by the hedge probe
    hedge_cancelled: int = 0  # losing probes cancelled + drained
    health_probes: int = 0  # active pings issued during the trace
    overload_rejections: int = 0  # replica-level sheds (slots+queue full)
    queued: int = 0  # requests that waited for a service slot
    rewarms: int = 0  # planner re-placements run during the trace

    @property
    def shed_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def as_rows(self) -> List[Tuple[str, float]]:
        return [
            ("requests", float(self.requests)),
            ("hit_ratio", self.hit_ratio),
            ("replica_hit_ratio", self.replica_hit_ratio),
            ("local_hits", float(self.local_hits)),
            ("remote_hits", float(self.remote_hits)),
            ("origin_fetches", float(self.origin_fetches)),
            ("failed", float(self.failed)),
            ("mean_km", self.mean_km),
            ("p50_km", self.p50_km),
            ("p99_km", self.p99_km),
            ("virtual_seconds", self.virtual_seconds),
            ("retries", float(self.retries)),
            ("reroutes", float(self.reroutes)),
            ("breaker_opens", float(self.breaker_opens)),
            ("placed", float(self.placed)),
            ("offered", float(self.offered)),
            ("shed", float(self.shed)),
            ("shed_fraction", self.shed_fraction),
            ("goodput", self.goodput),
            ("hedges", float(self.hedges)),
            ("hedge_wins", float(self.hedge_wins)),
            ("hedge_cancelled", float(self.hedge_cancelled)),
            ("health_probes", float(self.health_probes)),
            ("overload_rejections", float(self.overload_rejections)),
            ("queued", float(self.queued)),
            ("rewarms", float(self.rewarms)),
        ]


class EdgeCluster:
    """Origin + replicas + controller, wired and ready to serve.

    Args:
        catalogue: What the origin holds (and planners plan over).
        registry: Country axis shared by all geographic math.
        replica_countries: One replica per listed country (ids become
            ``edge-<CC>``).
        capacity: Per-replica cache capacity (videos).
        planner: Warm-placement planner; default
            :class:`~repro.serving.planner.ReactiveOnlyPlanner`.
        cache_factory: Builds each replica's cache; default
            ``LRUCache(capacity)``.
        origin_country / origin_latency / replica_latency: Topology and
            simulated timing knobs.
        last_mile_km: Within-country dispersion — every served request
            adds a seeded uniform ``[0, last_mile_km)`` viewer→PoP
            distance on top of the country-level geodesic. The draw
            depends only on the request *index*, so identical traces
            through different policies stay a paired comparison, and
            percentiles become continuous instead of sitting on
            country-distance atoms. 0 (default) disables it.
        retry / breaker_factory / reactive_admission: Passed through to
            the :class:`~repro.serving.controller.Controller`.
        replica_concurrency / replica_queue_depth /
        replica_service_seconds: The per-replica bounded-capacity model
            (see :class:`~repro.serving.replica.Replica`); the default
            ``None`` keeps replicas unbounded, the pre-overload model.
        hedge: Optional :class:`~repro.serving.controller.HedgePolicy`
            enabling hedged requests in the controller.
        admission: Optional
            :class:`~repro.serving.admission.AdmissionPolicy`; when set,
            :meth:`serve_trace` routes every request through an
            :class:`~repro.serving.admission.AdmissionController` and
            the report gains offered/shed/goodput accounting.
    """

    def __init__(
        self,
        catalogue: Dataset,
        registry: CountryRegistry,
        replica_countries: Sequence[str],
        capacity: int,
        planner: Optional[ServingPlanner] = None,
        cache_factory: Optional[Callable[[], EdgeCache]] = None,
        origin_country: str = "US",
        origin_latency: float = 0.08,
        replica_latency: float = 0.01,
        last_mile_km: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        reactive_admission: bool = True,
        replica_concurrency: Optional[int] = None,
        replica_queue_depth: int = 0,
        replica_service_seconds: float = 0.0,
        hedge: Optional[HedgePolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
    ):
        if not replica_countries:
            raise ServingError("need at least one replica country")
        if len(set(replica_countries)) != len(replica_countries):
            raise ServingError("replica countries must be unique")
        if last_mile_km < 0:
            raise ServingError(
                f"last_mile_km must be >= 0, got {last_mile_km}"
            )
        if cache_factory is None:
            cache_factory = lambda: LRUCache(capacity)
        self.last_mile_km = last_mile_km
        self.catalogue = catalogue
        self.registry = registry
        self.capacity = capacity
        self.planner = planner if planner is not None else ReactiveOnlyPlanner()
        self.origin = Origin(
            catalogue, country=origin_country, latency_seconds=origin_latency
        )
        self._fleet = [
            Replica(
                replica_id=f"edge-{country}",
                country=country,
                cache=cache_factory(),
                latency_seconds=replica_latency,
                concurrency=replica_concurrency,
                queue_depth=replica_queue_depth,
                service_seconds=replica_service_seconds,
            )
            for country in replica_countries
        ]
        self.controller = Controller(
            origin=self.origin,
            replicas=self._fleet,
            registry=registry,
            retry=retry,
            breaker_factory=breaker_factory,
            distances=distance_matrix(registry),
            reactive_admission=reactive_admission,
            hedge=hedge,
        )
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self.controller, admission)
            if admission is not None
            else None
        )
        self._placed = 0
        self._rewarms = 0

    @staticmethod
    def top_markets(traffic: TrafficModel, count: int) -> List[str]:
        """The ``count`` biggest markets by worldwide traffic share —
        the natural places to put replicas."""
        shares = traffic.as_vector()
        codes = traffic.registry.codes()
        order = np.argsort(-shares, kind="stable")[:count]
        return [codes[int(i)] for i in order]

    # -- accessors -----------------------------------------------------------

    @property
    def replicas(self) -> List[Replica]:
        return list(self._fleet)

    def replica(self, replica_id: str) -> Replica:
        return self.controller.replica(replica_id)

    @property
    def placed(self) -> int:
        """Copies placed by the last :meth:`warm`."""
        return self._placed

    def replica_regions(self) -> Dict[str, str]:
        """Replica id → world-region key (for regional chaos scripts)."""
        return {
            replica.replica_id: self.registry.get(replica.country).region
            for replica in self._fleet
        }

    def blackout(
        self,
        region: str,
        at_request: int,
        recover_at: Optional[int] = None,
        stagger: int = 0,
        cold_recovery: bool = True,
    ) -> ChaosSchedule:
        """A :meth:`ChaosSchedule.regional_blackout` for this fleet."""
        return ChaosSchedule.regional_blackout(
            self.replica_regions(),
            region,
            at_request,
            recover_at,
            stagger,
            cold_recovery=cold_recovery,
        )

    # -- lifecycle -----------------------------------------------------------

    async def warm(self, catalogue=None) -> int:
        """Plan + push the warm placement; returns copies placed.

        ``catalogue`` restricts planning to a subset (e.g. the cohort
        of videos launched so far in a rollout workload); the origin
        always holds the full catalogue regardless.
        """
        source = self.catalogue if catalogue is None else catalogue
        plan = self.planner.plan(source, self._fleet, self.capacity)
        self._placed = await self.controller.place(plan)
        self._rewarms += 1
        return self._placed

    async def serve_trace(
        self,
        requests: Iterable[Request],
        concurrency: int = 1,
        chaos: Optional[ChaosSchedule] = None,
        rewarm_every: Optional[int] = None,
        catalogue_at: Optional[Callable[[int], object]] = None,
        priority_at: Optional[Callable[[int, Request], int]] = None,
        probe_every: Optional[int] = None,
        rewarm_on_chaos: bool = False,
        on_result: Optional[Callable[[int, object, float], None]] = None,
    ) -> ServingReport:
        """Serve a whole trace; returns the report *for this trace only*
        (stats are delta-measured, so repeated calls each report their
        own window).

        ``concurrency`` > 1 batches that many requests into
        ``asyncio.gather`` waves (chaos actions land on wave
        boundaries). ``rewarm_every`` re-runs the planner's placement
        every that-many requests — the periodic placement refresh a real
        CDN runs, without which reactive churn erodes any warm plan.
        ``catalogue_at`` (requires ``rewarm_every``) maps the request
        index to the catalogue the re-warm plans over — how a rollout
        workload tells the planner which videos have launched.

        Overload/failover knobs: ``priority_at(index, request)`` assigns
        each request an admission priority (requires the cluster's
        ``admission`` gate; default: all ``STANDARD``); ``probe_every``
        runs an active :meth:`Controller.probe_health` sweep every
        that-many requests, feeding the breakers out-of-band;
        ``rewarm_on_chaos`` re-runs the planner immediately after any
        chaos action fires (the adaptive failover path — with an
        :class:`~repro.serving.planner.AdaptiveTagPlanner` this re-places
        the lost region's catalogue onto survivors); ``on_result(index,
        result, distance_km)`` observes every outcome — ServeResult or
        ShedResult — in issue order; ``distance_km`` is the *charged*
        serving distance including last-mile jitter (exactly what the
        report aggregates; NaN for sheds), which is how the S3
        benchmark builds its recovery timeline.

        Every request produces exactly one outcome — served or shed —
        and an exception anywhere aborts the run loudly rather than
        dropping requests silently. When the cluster has a planner with
        ``observe_request`` (the adaptive planner), every offered
        request's country is fed to it, shed or not: shed traffic is
        still demand the next placement should chase.
        """
        if concurrency < 1:
            raise ServingError(f"concurrency must be >= 1, got {concurrency}")
        if rewarm_every is not None and rewarm_every < 1:
            raise ServingError(
                f"rewarm_every must be >= 1, got {rewarm_every}"
            )
        if catalogue_at is not None and rewarm_every is None:
            raise ServingError("catalogue_at requires rewarm_every")
        if priority_at is not None and self.admission is None:
            raise ServingError(
                "priority_at requires the cluster's admission gate "
                "(pass admission=AdmissionPolicy(...) to EdgeCluster)"
            )
        if probe_every is not None and probe_every < 1:
            raise ServingError(
                f"probe_every must be >= 1, got {probe_every}"
            )
        loop = asyncio.get_event_loop()
        started = loop.time()
        before = self.controller.stats.copy()
        admission_before = (
            self.admission.stats.copy() if self.admission is not None else None
        )
        replica_before = self._replica_counters()
        rewarms_before = self._rewarms
        distances: List[float] = []
        observe = getattr(self.planner, "observe_request", None)

        # Last-mile draws depend only on the request index (issue order),
        # so identical traces through different policies see identical
        # jitter — a paired comparison.
        jitter_rng = (
            spawn_rng(0, "last-mile") if self.last_mile_km > 0 else None
        )
        jitter_chunk = 65536
        jitter_buf = None

        async def serve_one(
            index: int, request: Request, extra_km: float, priority: int
        ) -> None:
            if self.admission is not None:
                result = await self.admission.get(
                    request.video_id, request.country, priority=priority
                )
            else:
                result = await self.controller.get(
                    request.video_id, request.country
                )
            charged_km = float("nan")
            if not result.shed:
                charged_km = result.distance_km + extra_km
                distances.append(charged_km)
            if on_result is not None:
                on_result(index, result, charged_km)

        batch: List = []

        async def flush() -> None:
            nonlocal batch
            if batch:
                await asyncio.gather(*batch)
                batch = []

        for index, request in enumerate(requests):
            if chaos is not None:
                fired = chaos.apply(self, index)
                if fired and rewarm_on_chaos:
                    await flush()
                    await self.warm(
                        catalogue_at(index) if catalogue_at is not None else None
                    )
            if rewarm_every is not None and index > 0 and index % rewarm_every == 0:
                await flush()
                await self.warm(
                    catalogue_at(index) if catalogue_at is not None else None
                )
            if probe_every is not None and index > 0 and index % probe_every == 0:
                await flush()
                await self.controller.probe_health()
            if observe is not None:
                observe(request.country)
            if jitter_rng is not None:
                offset = index % jitter_chunk
                if offset == 0:
                    jitter_buf = jitter_rng.random(jitter_chunk)
                extra_km = float(jitter_buf[offset]) * self.last_mile_km
            else:
                extra_km = 0.0
            priority = (
                priority_at(index, request) if priority_at is not None else STANDARD
            )
            if concurrency == 1:
                await serve_one(index, request, extra_km, priority)
            else:
                batch.append(serve_one(index, request, extra_km, priority))
                if len(batch) >= concurrency:
                    await flush()
        await flush()
        return self._report(
            before,
            admission_before,
            replica_before,
            rewarms_before,
            distances,
            loop.time() - started,
        )

    def _replica_counters(self) -> Tuple[int, int]:
        """Fleet-wide (overload rejections, queued) counter snapshot."""
        return (
            sum(r.stats.rejected_overload for r in self._fleet),
            sum(r.stats.queued for r in self._fleet),
        )

    def _report(
        self,
        before: "ControllerStats",
        admission_before: Optional["AdmissionStats"],
        replica_before: Tuple[int, int],
        rewarms_before: int,
        distances: Sequence[float],
        virtual_seconds: float,
    ) -> ServingReport:
        stats = self.controller.stats.delta(before)
        if distances:
            array = np.asarray(distances, dtype=float)
            mean_km = float(array.mean())
            p50_km = float(np.percentile(array, 50))
            p99_km = float(np.percentile(array, 99))
        else:
            mean_km = p50_km = p99_km = 0.0
        if admission_before is not None:
            admission = self.admission.stats.delta(admission_before)
            offered = admission.offered
            shed = admission.shed
            goodput = admission.goodput
        else:
            offered = stats.requests
            shed = 0
            goodput = 1.0 if stats.requests else 0.0
        overload_after, queued_after = self._replica_counters()
        return ServingReport(
            planner=self.planner.name,
            requests=stats.requests,
            local_hits=stats.local_hits,
            remote_hits=stats.remote_hits,
            origin_fetches=stats.origin_fetches,
            failed=stats.failed,
            hit_ratio=stats.hit_ratio,
            replica_hit_ratio=stats.replica_hit_ratio,
            mean_km=mean_km,
            p50_km=p50_km,
            p99_km=p99_km,
            virtual_seconds=virtual_seconds,
            retries=stats.retries,
            reroutes=stats.reroutes,
            breaker_opens=self.controller.breaker_opens(),
            placed=self._placed,
            offered=offered,
            shed=shed,
            goodput=goodput,
            hedges=stats.hedges,
            hedge_wins=stats.hedge_wins,
            hedge_cancelled=stats.hedge_cancelled,
            health_probes=stats.health_probes,
            overload_rejections=overload_after - replica_before[0],
            queued=queued_after - replica_before[1],
            rewarms=self._rewarms - rewarms_before,
        )
