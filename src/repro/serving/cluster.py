"""EdgeCluster: one-stop assembly of origin + controller + replicas.

This is the level benchmarks and tests talk to: build a cluster from a
catalogue and a list of replica countries, ``warm()`` it with a
planner's placement plan, then ``serve_trace()`` a workload and read a
:class:`ServingReport` (hit ratio, serving-distance percentiles, origin
load, resilience counters).

Chaos is first-class: a :class:`ChaosSchedule` kills and revives
replicas at named request indices, deterministically, so "k of N edges
die mid-workload" is one reproducible test case rather than a flaky
thread race.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datamodel.dataset import Dataset
from repro.errors import ServingError
from repro.placement.cache import EdgeCache, LRUCache
from repro.placement.workload import Request
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.serving.controller import Controller, ControllerStats
from repro.serving.origin import Origin
from repro.serving.planner import ReactiveOnlyPlanner, ServingPlanner
from repro.serving.replica import Replica
from repro.synth.rng import spawn_rng
from repro.world.countries import CountryRegistry
from repro.world.geo import distance_matrix
from repro.world.traffic import TrafficModel

FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True)
class ChaosAction:
    """Flip one replica's liveness just before request ``at_request``."""

    at_request: int
    action: str  # "fail" | "recover"
    replica_id: str


class ChaosSchedule:
    """An ordered, replayable list of liveness flips.

    ``apply(cluster, i)`` executes every not-yet-applied action with
    ``at_request <= i``; :meth:`reset` rewinds for a second run. The
    schedule is pure data — the same schedule against the same trace is
    the same experiment, every time.
    """

    def __init__(self, actions: Iterable[ChaosAction]):
        self._actions = sorted(
            actions, key=lambda a: (a.at_request, a.replica_id, a.action)
        )
        for action in self._actions:
            if action.action not in (FAIL, RECOVER):
                raise ServingError(
                    f"unknown chaos action {action.action!r}"
                )
            if action.at_request < 0:
                raise ServingError("at_request must be >= 0")
        self._position = 0

    @classmethod
    def kill(
        cls,
        replica_ids: Sequence[str],
        at_request: int,
        recover_at: Optional[int] = None,
    ) -> "ChaosSchedule":
        """Kill ``replica_ids`` at one index, optionally revive later."""
        actions = [
            ChaosAction(at_request, FAIL, rid) for rid in replica_ids
        ]
        if recover_at is not None:
            if recover_at <= at_request:
                raise ServingError("recover_at must come after at_request")
            actions += [
                ChaosAction(recover_at, RECOVER, rid) for rid in replica_ids
            ]
        return cls(actions)

    def __len__(self) -> int:
        return len(self._actions)

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._actions)

    def reset(self) -> None:
        self._position = 0

    def apply(self, cluster: "EdgeCluster", request_index: int) -> None:
        while (
            self._position < len(self._actions)
            and self._actions[self._position].at_request <= request_index
        ):
            action = self._actions[self._position]
            replica = cluster.replica(action.replica_id)
            if action.action == FAIL:
                replica.fail()
            else:
                replica.recover()
            self._position += 1


@dataclass(frozen=True)
class ServingReport:
    """What one served workload looked like, end to end."""

    planner: str
    requests: int
    local_hits: int
    remote_hits: int
    origin_fetches: int
    failed: int
    #: Edge (home-PoP) hit ratio — the gated number.
    hit_ratio: float
    #: Served by any replica at all (edge or peer PoP).
    replica_hit_ratio: float
    mean_km: float
    p50_km: float
    p99_km: float
    virtual_seconds: float
    retries: int
    reroutes: int
    breaker_opens: int
    placed: int

    def as_rows(self) -> List[Tuple[str, float]]:
        return [
            ("requests", float(self.requests)),
            ("hit_ratio", self.hit_ratio),
            ("replica_hit_ratio", self.replica_hit_ratio),
            ("local_hits", float(self.local_hits)),
            ("remote_hits", float(self.remote_hits)),
            ("origin_fetches", float(self.origin_fetches)),
            ("failed", float(self.failed)),
            ("mean_km", self.mean_km),
            ("p50_km", self.p50_km),
            ("p99_km", self.p99_km),
            ("virtual_seconds", self.virtual_seconds),
            ("retries", float(self.retries)),
            ("reroutes", float(self.reroutes)),
            ("breaker_opens", float(self.breaker_opens)),
            ("placed", float(self.placed)),
        ]


class EdgeCluster:
    """Origin + replicas + controller, wired and ready to serve.

    Args:
        catalogue: What the origin holds (and planners plan over).
        registry: Country axis shared by all geographic math.
        replica_countries: One replica per listed country (ids become
            ``edge-<CC>``).
        capacity: Per-replica cache capacity (videos).
        planner: Warm-placement planner; default
            :class:`~repro.serving.planner.ReactiveOnlyPlanner`.
        cache_factory: Builds each replica's cache; default
            ``LRUCache(capacity)``.
        origin_country / origin_latency / replica_latency: Topology and
            simulated timing knobs.
        last_mile_km: Within-country dispersion — every served request
            adds a seeded uniform ``[0, last_mile_km)`` viewer→PoP
            distance on top of the country-level geodesic. The draw
            depends only on the request *index*, so identical traces
            through different policies stay a paired comparison, and
            percentiles become continuous instead of sitting on
            country-distance atoms. 0 (default) disables it.
        retry / breaker_factory / reactive_admission: Passed through to
            the :class:`~repro.serving.controller.Controller`.
    """

    def __init__(
        self,
        catalogue: Dataset,
        registry: CountryRegistry,
        replica_countries: Sequence[str],
        capacity: int,
        planner: Optional[ServingPlanner] = None,
        cache_factory: Optional[Callable[[], EdgeCache]] = None,
        origin_country: str = "US",
        origin_latency: float = 0.08,
        replica_latency: float = 0.01,
        last_mile_km: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        reactive_admission: bool = True,
    ):
        if not replica_countries:
            raise ServingError("need at least one replica country")
        if len(set(replica_countries)) != len(replica_countries):
            raise ServingError("replica countries must be unique")
        if last_mile_km < 0:
            raise ServingError(
                f"last_mile_km must be >= 0, got {last_mile_km}"
            )
        if cache_factory is None:
            cache_factory = lambda: LRUCache(capacity)
        self.last_mile_km = last_mile_km
        self.catalogue = catalogue
        self.registry = registry
        self.capacity = capacity
        self.planner = planner if planner is not None else ReactiveOnlyPlanner()
        self.origin = Origin(
            catalogue, country=origin_country, latency_seconds=origin_latency
        )
        self._fleet = [
            Replica(
                replica_id=f"edge-{country}",
                country=country,
                cache=cache_factory(),
                latency_seconds=replica_latency,
            )
            for country in replica_countries
        ]
        self.controller = Controller(
            origin=self.origin,
            replicas=self._fleet,
            registry=registry,
            retry=retry,
            breaker_factory=breaker_factory,
            distances=distance_matrix(registry),
            reactive_admission=reactive_admission,
        )
        self._placed = 0

    @staticmethod
    def top_markets(traffic: TrafficModel, count: int) -> List[str]:
        """The ``count`` biggest markets by worldwide traffic share —
        the natural places to put replicas."""
        shares = traffic.as_vector()
        codes = traffic.registry.codes()
        order = np.argsort(-shares, kind="stable")[:count]
        return [codes[int(i)] for i in order]

    # -- accessors -----------------------------------------------------------

    @property
    def replicas(self) -> List[Replica]:
        return list(self._fleet)

    def replica(self, replica_id: str) -> Replica:
        return self.controller.replica(replica_id)

    @property
    def placed(self) -> int:
        """Copies placed by the last :meth:`warm`."""
        return self._placed

    # -- lifecycle -----------------------------------------------------------

    async def warm(self, catalogue=None) -> int:
        """Plan + push the warm placement; returns copies placed.

        ``catalogue`` restricts planning to a subset (e.g. the cohort
        of videos launched so far in a rollout workload); the origin
        always holds the full catalogue regardless.
        """
        source = self.catalogue if catalogue is None else catalogue
        plan = self.planner.plan(source, self._fleet, self.capacity)
        self._placed = await self.controller.place(plan)
        return self._placed

    async def serve_trace(
        self,
        requests: Iterable[Request],
        concurrency: int = 1,
        chaos: Optional[ChaosSchedule] = None,
        rewarm_every: Optional[int] = None,
        catalogue_at: Optional[Callable[[int], object]] = None,
    ) -> ServingReport:
        """Serve a whole trace; returns the report *for this trace only*
        (stats are delta-measured, so repeated calls each report their
        own window).

        ``concurrency`` > 1 batches that many requests into
        ``asyncio.gather`` waves (chaos actions land on wave
        boundaries). ``rewarm_every`` re-runs the planner's placement
        every that-many requests — the periodic placement refresh a real
        CDN runs, without which reactive churn erodes any warm plan.
        ``catalogue_at`` (requires ``rewarm_every``) maps the request
        index to the catalogue the re-warm plans over — how a rollout
        workload tells the planner which videos have launched.
        Every request produces exactly one result — an exception
        anywhere aborts the run loudly rather than dropping requests
        silently.
        """
        if concurrency < 1:
            raise ServingError(f"concurrency must be >= 1, got {concurrency}")
        if rewarm_every is not None and rewarm_every < 1:
            raise ServingError(
                f"rewarm_every must be >= 1, got {rewarm_every}"
            )
        if catalogue_at is not None and rewarm_every is None:
            raise ServingError("catalogue_at requires rewarm_every")
        loop = asyncio.get_event_loop()
        started = loop.time()
        before = self.controller.stats.copy()
        distances: List[float] = []

        # Last-mile draws depend only on the request index (issue order),
        # so identical traces through different policies see identical
        # jitter — a paired comparison.
        jitter_rng = (
            spawn_rng(0, "last-mile") if self.last_mile_km > 0 else None
        )
        jitter_chunk = 65536
        jitter_buf = None

        async def serve_one(request: Request, extra_km: float) -> None:
            result = await self.controller.get(request.video_id, request.country)
            distances.append(result.distance_km + extra_km)

        batch: List = []
        for index, request in enumerate(requests):
            if chaos is not None:
                chaos.apply(self, index)
            if rewarm_every is not None and index > 0 and index % rewarm_every == 0:
                if batch:
                    await asyncio.gather(*batch)
                    batch = []
                await self.warm(
                    catalogue_at(index) if catalogue_at is not None else None
                )
            if jitter_rng is not None:
                offset = index % jitter_chunk
                if offset == 0:
                    jitter_buf = jitter_rng.random(jitter_chunk)
                extra_km = float(jitter_buf[offset]) * self.last_mile_km
            else:
                extra_km = 0.0
            if concurrency == 1:
                await serve_one(request, extra_km)
            else:
                batch.append(serve_one(request, extra_km))
                if len(batch) >= concurrency:
                    await asyncio.gather(*batch)
                    batch = []
        if batch:
            await asyncio.gather(*batch)
        return self._report(before, distances, loop.time() - started)

    def _report(
        self,
        before: "ControllerStats",
        distances: Sequence[float],
        virtual_seconds: float,
    ) -> ServingReport:
        stats = self.controller.stats.delta(before)
        if distances:
            array = np.asarray(distances, dtype=float)
            mean_km = float(array.mean())
            p50_km = float(np.percentile(array, 50))
            p99_km = float(np.percentile(array, 99))
        else:
            mean_km = p50_km = p99_km = 0.0
        return ServingReport(
            planner=self.planner.name,
            requests=stats.requests,
            local_hits=stats.local_hits,
            remote_hits=stats.remote_hits,
            origin_fetches=stats.origin_fetches,
            failed=stats.failed,
            hit_ratio=stats.hit_ratio,
            replica_hit_ratio=stats.replica_hit_ratio,
            mean_km=mean_km,
            p50_km=p50_km,
            p99_km=p99_km,
            virtual_seconds=virtual_seconds,
            retries=stats.retries,
            reroutes=stats.reroutes,
            breaker_opens=self.controller.breaker_opens(),
            placed=self._placed,
        )
