"""Terminal visualization: ASCII choropleths, bars, text reports.

The paper's three figures are world choropleth maps. This package
renders their terminal equivalents:

- :mod:`repro.viz.asciimap` — a hand-laid ASCII world grid and
  region-strip choropleths with block-character shading, plus horizontal
  bar charts;
- :mod:`repro.viz.report` — composed text reports for the paper's
  artefacts (Fig. 1 video map, Figs. 2–3 tag maps, the §2 funnel/stats
  tables).
"""

from repro.viz.asciimap import (
    shade_for,
    render_world_grid,
    render_region_strips,
    render_bar_chart,
)
from repro.viz.report import (
    format_table,
    video_map_report,
    tag_map_report,
    funnel_report,
    stats_report,
)
from repro.viz.plots import render_histogram, render_loglog_ccdf

__all__ = [
    "shade_for",
    "render_world_grid",
    "render_region_strips",
    "render_bar_chart",
    "format_table",
    "video_map_report",
    "tag_map_report",
    "funnel_report",
    "stats_report",
    "render_histogram",
    "render_loglog_ccdf",
]
