"""ASCII choropleths and bar charts.

Values are arbitrary nonnegative weights (views, shares, intensities);
shading is always relative to the rendered vector's maximum, exactly as
the paper's per-video maps were normalized to their own peak (K(v) in
Eq. 1).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.world.countries import CountryRegistry, default_registry
from repro.world.regions import REGIONS

#: Shade ramp, lightest to darkest (empty = zero).
SHADES = (" ", "·", "░", "▒", "▓", "█")

#: Hand-laid world grid: rows are latitude bands (north on top), entries
#: are country codes placed roughly west→east. ``None`` renders as water.
WORLD_GRID: Tuple[Tuple[Optional[str], ...], ...] = (
    (None, None, "IS", "NO", "SE", "FI", None, "RU", None, None, None, None),
    ("CA", None, "IE", "GB", "DK", "PL", "UA", None, None, None, None, None),
    ("US", None, "FR", "BE", "NL", "DE", "CZ", "SK", None, "KR", "JP", None),
    ("MX", None, "PT", "ES", "CH", "AT", "HU", "RO", "CN", None, "TW", None),
    (None, "CO", "VE", "IT", "HR", "RS", "BG", "GR", "TR", "IN", "HK", None),
    ("PE", "BR", None, "MA", "IL", "SA", "AE", "PK", "BD", "TH", "VN", "PH"),
    ("CL", "AR", None, "EG", "NG", "KE", "LK", "MY", "SG", "ID", None, None),
    (None, None, None, None, "ZA", None, None, None, "AU", "NZ", None, None),
)


def shade_for(value: float, max_value: float) -> str:
    """The shade character for ``value`` relative to ``max_value``."""
    if value < 0 or max_value < 0:
        raise AnalysisError("shade values must be nonnegative")
    if max_value == 0 or value == 0:
        return SHADES[0]
    fraction = min(value / max_value, 1.0)
    # Nonzero values always get at least the faintest visible shade.
    index = max(1, int(round(fraction * (len(SHADES) - 1))))
    return SHADES[index]


def _normalize_values(values: Mapping[str, float]) -> Dict[str, float]:
    cleaned = {}
    for code, value in values.items():
        value = float(value)
        if value < 0:
            raise AnalysisError(f"negative weight for {code}: {value}")
        cleaned[code] = value
    return cleaned


def render_world_grid(values: Mapping[str, float], legend: bool = True) -> str:
    """Render a world choropleth on the hand-laid grid.

    Each present country renders as ``CC█`` (code + shade); countries
    absent from ``values`` (or zero) render dim; water is blank.
    """
    cleaned = _normalize_values(values)
    peak = max(cleaned.values(), default=0.0)
    lines: List[str] = []
    for row in WORLD_GRID:
        cells: List[str] = []
        for code in row:
            if code is None:
                cells.append("    ")
            else:
                shade = shade_for(cleaned.get(code, 0.0), peak) if peak else SHADES[0]
                cells.append(f"{code}{shade} ")
        lines.append("".join(cells).rstrip())
    if legend:
        ramp = "".join(SHADES[1:])
        lines.append("")
        lines.append(f"legend: low {ramp} high (relative to peak)")
    return "\n".join(lines)


def render_region_strips(
    values: Mapping[str, float],
    registry: Optional[CountryRegistry] = None,
) -> str:
    """Render one shaded strip of countries per world region."""
    if registry is None:
        registry = default_registry()
    cleaned = _normalize_values(values)
    peak = max(cleaned.values(), default=0.0)
    label_width = max(len(name) for name in REGIONS.values())
    lines: List[str] = []
    for region, region_name in REGIONS.items():
        members = [c for c in registry if c.region == region]
        if not members:
            continue
        cells = []
        for country in members:
            shade = (
                shade_for(cleaned.get(country.code, 0.0), peak)
                if peak
                else SHADES[0]
            )
            cells.append(f"{country.code}{shade}")
        lines.append(f"{region_name:<{label_width}}  " + " ".join(cells))
    return "\n".join(lines)


def render_bar_chart(
    values: Mapping[str, float],
    top: int = 10,
    width: int = 40,
    value_format: str = "{:.1%}",
) -> str:
    """Horizontal bar chart of the ``top`` largest entries.

    ``value_format`` renders the numeric annotation (default: percent —
    pass ``"{:,.0f}"`` for raw view counts).
    """
    if top < 1:
        raise AnalysisError(f"top must be >= 1, got {top}")
    if width < 1:
        raise AnalysisError(f"width must be >= 1, got {width}")
    cleaned = _normalize_values(values)
    ranked = sorted(cleaned.items(), key=lambda kv: -kv[1])[:top]
    if not ranked:
        return "(no data)"
    peak = ranked[0][1]
    lines: List[str] = []
    for code, value in ranked:
        bar_length = int(round(width * (value / peak))) if peak else 0
        bar = "█" * max(bar_length, 1 if value > 0 else 0)
        annotation = value_format.format(value)
        lines.append(f"{code:>3} {bar:<{width}} {annotation}")
    return "\n".join(lines)
