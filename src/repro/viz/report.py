"""Composed text reports for the paper's artefacts."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import jensen_shannon, normalized_entropy, top_k_share
from repro.datamodel.dataset import DatasetStats, FilterReport
from repro.datamodel.video import Video
from repro.viz.asciimap import render_bar_chart, render_world_grid
from repro.world.countries import CountryRegistry, default_registry
from repro.world.traffic import TrafficModel


def format_table(rows: Sequence[Tuple[str, object]], title: str = "") -> str:
    """Align (label, value) rows into a simple two-column table."""
    if not rows:
        return title
    label_width = max(len(str(label)) for label, _ in rows)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in rows:
        if isinstance(value, bool):
            rendered = "yes" if value else "no"
        elif isinstance(value, int):
            rendered = f"{value:,}"
        else:
            rendered = str(value)
        lines.append(f"{str(label):<{label_width}}  {rendered}")
    return "\n".join(lines)


def _vector_as_mapping(
    vector: np.ndarray, registry: CountryRegistry
) -> Mapping[str, float]:
    return {
        code: float(vector[i]) for i, code in enumerate(registry.codes())
    }


def video_map_report(
    video: Video,
    shares: np.ndarray,
    registry: Optional[CountryRegistry] = None,
) -> str:
    """Fig.-1-style report: a video's popularity world map + top countries.

    Args:
        video: The video (title/views used in the header).
        shares: Its reconstructed per-country view shares.
        registry: Country axis.
    """
    if registry is None:
        registry = default_registry()
    mapping = _vector_as_mapping(shares, registry)
    header = (
        f"Popularity map of {video.title!r}\n"
        f"total views: {video.views:,}   tags: {', '.join(video.tags[:6])}"
    )
    intensity_note = ""
    if video.popularity is not None:
        saturated = [
            code
            for code, value in video.popularity
            if value == video.popularity.max_intensity()
        ]
        intensity_note = (
            f"\nmap peak intensity {video.popularity.max_intensity()} in: "
            + ", ".join(saturated[:8])
        )
    return (
        header
        + intensity_note
        + "\n\n"
        + render_world_grid(mapping)
        + "\n\ntop countries by estimated views:\n"
        + render_bar_chart(mapping, top=8)
    )


def tag_map_report(
    tag: str,
    shares: np.ndarray,
    traffic: TrafficModel,
    video_count: int = 0,
    total_views: float = 0.0,
) -> str:
    """Fig.-2/3-style report: a tag's view geography vs the traffic prior."""
    registry = traffic.registry
    mapping = _vector_as_mapping(shares, registry)
    prior = traffic.as_vector()
    jsd = jensen_shannon(shares, prior)
    entropy = normalized_entropy(shares)
    top1 = top_k_share(shares, 1)
    top_code = registry.codes()[int(np.argmax(shares))]
    header = f"Geographic view distribution of tag {tag!r}"
    facts = (
        f"videos: {video_count:,}   est. views: {total_views:,.0f}\n"
        f"JSD to traffic prior: {jsd:.3f}   normalized entropy: {entropy:.3f}   "
        f"top country: {top_code} ({top1:.1%})"
    )
    return (
        header
        + "\n"
        + facts
        + "\n\n"
        + render_world_grid(mapping)
        + "\n\ntop countries by estimated views share:\n"
        + render_bar_chart(mapping, top=8)
    )


def funnel_report(report: FilterReport) -> str:
    """The §2 filter funnel as a table (T1's printable form)."""
    rows = list(report.as_rows())
    rows.append(("retention rate", f"{report.retention_rate:.1%}"))
    return format_table(rows, title="Dataset filter funnel (paper §2)")


def stats_report(stats: DatasetStats) -> str:
    """The §2 corpus statistics as a table."""
    return format_table(
        list(stats.as_rows()), title="Corpus statistics (paper §2)"
    )
