"""ASCII distribution plots: histograms and log-log CCDFs.

Terminal-grade companions to the choropleths: quick visual checks of
heavy-tailed view counts and tag rank-frequency curves without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError

#: Characters used for plot marks.
_BAR = "█"
_POINT = "•"


def render_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    log_x: bool = False,
    title: str = "",
) -> str:
    """An ASCII histogram, optionally with logarithmic bin edges.

    ``log_x=True`` is the right choice for view counts: equal-width bins
    in log-space show the heavy tail instead of one giant first bin.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise AnalysisError("no values to plot")
    if bins < 1:
        raise AnalysisError("bins must be >= 1")
    if width < 1:
        raise AnalysisError("width must be >= 1")
    if log_x:
        if np.any(data <= 0):
            raise AnalysisError("log_x requires strictly positive values")
        edges = np.logspace(
            math.log10(data.min()), math.log10(data.max()), bins + 1
        )
    else:
        edges = np.linspace(data.min(), data.max(), bins + 1)
    counts, edges = np.histogram(data, bins=edges)
    peak = counts.max() if counts.max() > 0 else 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        low, high = edges[i], edges[i + 1]
        bar = _BAR * max(int(round(width * count / peak)), 1 if count else 0)
        lines.append(f"[{low:>10.3g}, {high:>10.3g})  {bar:<{width}} {count}")
    return "\n".join(lines)


def render_loglog_ccdf(
    values: Sequence[float],
    rows: int = 12,
    cols: int = 50,
    title: str = "",
) -> str:
    """An ASCII log-log complementary-CDF scatter.

    Heavy-tailed data (power laws, log-normals) appear as a slowly
    bending or straight descending front; exponential data collapses.
    """
    data = np.asarray([v for v in values if v > 0], dtype=float)
    if data.size == 0:
        raise AnalysisError("no positive values to plot")
    if rows < 2 or cols < 2:
        raise AnalysisError("rows and cols must be >= 2")
    sorted_values = np.sort(data)
    n = sorted_values.size
    probabilities = (n - np.arange(n)) / n

    log_x = np.log10(sorted_values)
    log_y = np.log10(probabilities)
    x_min, x_max = log_x.min(), log_x.max()
    y_min, y_max = log_y.min(), log_y.max()
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * cols for _ in range(rows)]
    for x, y in zip(log_x, log_y):
        col = min(int((x - x_min) / x_span * (cols - 1)), cols - 1)
        row = min(int((y_max - y) / y_span * (rows - 1)), rows - 1)
        grid[row][col] = _POINT

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"P>=v 1e{y_max:+.0f} ┐")
    for row in grid:
        lines.append("           │" + "".join(row))
    lines.append(f"     1e{y_min:+.0f} ┴" + "─" * cols)
    lines.append(
        f"            v: 1e{x_min:+.1f} … 1e{x_max:+.1f} (log scale)"
    )
    return "\n".join(lines)
