"""Tests for the deterministic filesystem fault injector."""

import errno

import pytest

from repro.durability.fsfaults import (
    FS_FAULT_KINDS,
    FaultyFilesystem,
    Filesystem,
    SimulatedCrash,
)
from repro.errors import ConfigError


class TestRealFilesystem:
    def test_atomic_primitives_work(self, tmp_path):
        fs = Filesystem()
        path = tmp_path / "a.txt"
        with fs.open(path, "wb") as handle:
            handle.write(b"hello")
            fs.fsync(handle)
        fs.fsync_dir(tmp_path)
        assert fs.read_bytes(path) == b"hello"
        assert fs.exists(path)
        assert fs.size(path) == 5
        fs.replace(path, tmp_path / "b.txt")
        assert not fs.exists(path)
        fs.truncate(tmp_path / "b.txt", 2)
        assert fs.read_bytes(tmp_path / "b.txt") == b"he"
        fs.unlink(tmp_path / "b.txt")
        fs.unlink(tmp_path / "b.txt")  # missing_ok by default

    def test_unlink_missing_strict(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Filesystem().unlink(tmp_path / "nope", missing_ok=False)


class TestConfigValidation:
    def test_bad_fault_rate(self):
        with pytest.raises(ConfigError):
            FaultyFilesystem(fault_rate=1.0)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            FaultyFilesystem(kinds=("meteor",))

    def test_bad_crash_op(self):
        with pytest.raises(ConfigError):
            FaultyFilesystem(crash_at_op=0)

    def test_bad_torn_fraction(self):
        with pytest.raises(ConfigError):
            FaultyFilesystem(torn_fraction=1.5)


class TestFaultInjection:
    def _hammer(self, fs, tmp_path, rounds=60):
        """Drive many writes+fsyncs, tolerating injected OSErrors."""
        outcomes = []
        for i in range(rounds):
            path = tmp_path / f"f{i}.bin"
            try:
                handle = fs.open(path, "wb")
                try:
                    handle.write(b"x" * 64)
                    fs.fsync(handle)
                finally:
                    handle.close()
                outcomes.append("ok")
            except OSError as exc:
                outcomes.append(exc.errno)
        return outcomes

    def test_zero_rate_is_clean_passthrough(self, tmp_path):
        fs = FaultyFilesystem(seed=1, fault_rate=0.0)
        outcomes = self._hammer(fs, tmp_path, rounds=10)
        assert outcomes == ["ok"] * 10
        assert sum(fs.fault_counts.values()) == 0

    def test_faults_fire_and_are_counted(self, tmp_path):
        fs = FaultyFilesystem(seed=3, fault_rate=0.4)
        outcomes = self._hammer(fs, tmp_path)
        assert any(o != "ok" for o in outcomes)
        assert sum(fs.fault_counts.values()) > 0
        assert set(fs.fault_counts) == set(FS_FAULT_KINDS)

    def test_same_seed_same_schedule(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = self._hammer(FaultyFilesystem(seed=7, fault_rate=0.3), tmp_path / "a")
        b = self._hammer(FaultyFilesystem(seed=7, fault_rate=0.3), tmp_path / "b")
        assert a == b

    def test_different_seed_different_schedule(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = self._hammer(FaultyFilesystem(seed=7, fault_rate=0.3), tmp_path / "a")
        b = self._hammer(FaultyFilesystem(seed=8, fault_rate=0.3), tmp_path / "b")
        assert a != b

    def test_enospc_has_right_errno(self, tmp_path):
        fs = FaultyFilesystem(seed=2, fault_rate=0.6, kinds=("enospc",))
        outcomes = self._hammer(fs, tmp_path, rounds=30)
        assert errno.ENOSPC in outcomes

    def test_torn_write_persists_prefix(self, tmp_path):
        fs = FaultyFilesystem(
            seed=2, fault_rate=0.6, kinds=("torn",), torn_fraction=0.5
        )
        torn_sizes = []
        for i in range(30):
            path = tmp_path / f"f{i}.bin"
            try:
                with fs.open(path, "wb") as handle:
                    handle.write(b"x" * 64)
            except OSError:
                torn_sizes.append(path.stat().st_size)
        assert torn_sizes and all(size == 32 for size in torn_sizes)

    def test_short_read_returns_prefix(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"y" * 100)
        fs = FaultyFilesystem(seed=5, fault_rate=0.8, kinds=("short_read",))
        lengths = {len(fs.read_bytes(path)) for _ in range(30)}
        assert 50 in lengths  # some reads were short
        assert 100 in lengths  # and some were whole


class TestCrashCutPoints:
    def test_crash_tears_write_and_raises(self, tmp_path):
        fs = FaultyFilesystem(seed=1, crash_at_op=1, torn_fraction=0.25)
        path = tmp_path / "wal.bin"
        handle = fs.open(path, "wb")
        with pytest.raises(SimulatedCrash):
            handle.write(b"z" * 80)
        assert path.stat().st_size == 20  # the torn prefix survived
        assert fs.crashed

    def test_everything_fails_after_crash(self, tmp_path):
        fs = FaultyFilesystem(seed=1, crash_at_op=1)
        handle = fs.open(tmp_path / "a.bin", "wb")
        with pytest.raises(SimulatedCrash):
            handle.write(b"data")
        with pytest.raises(SimulatedCrash):
            fs.fsync_dir(tmp_path)
        with pytest.raises(SimulatedCrash):
            fs.replace(tmp_path / "a.bin", tmp_path / "b.bin")
        with pytest.raises(SimulatedCrash):
            fs.read_bytes(tmp_path / "a.bin")

    def test_crash_counts_mutating_ops_only(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"q" * 10)
        fs = FaultyFilesystem(seed=1, crash_at_op=2)
        for _ in range(5):
            fs.read_bytes(path)  # reads never advance the crash clock
        handle = fs.open(tmp_path / "out.bin", "wb")
        handle.write(b"one")  # op 1
        with pytest.raises(SimulatedCrash):
            fs.fsync(handle)  # op 2 — boom
        assert fs.ops_performed == 2

    def test_simulated_crash_evades_except_exception(self):
        """The kill -9 analogue must not be absorbable by cleanup code."""
        assert not issubclass(SimulatedCrash, Exception)
        with pytest.raises(SimulatedCrash):
            try:
                raise SimulatedCrash("boom")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("except Exception caught a simulated crash")
