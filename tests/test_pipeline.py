"""Tests for the end-to-end pipeline facade."""

import pytest

from repro.pipeline import PipelineConfig, run_pipeline
from repro.synth.presets import preset_config
from repro.synth.universe import UniverseConfig


class TestPipeline:
    def test_components_wired(self, tiny_pipeline):
        assert len(tiny_pipeline.universe) == 400
        assert len(tiny_pipeline.dataset) == tiny_pipeline.filter_report.retained
        assert len(tiny_pipeline.tag_table) > 0
        assert tiny_pipeline.reconstructor.traffic is tiny_pipeline.universe.traffic

    def test_exhaustive_crawl_reaches_most_of_universe(self, tiny_pipeline):
        # Snowball from 25 country feeds should cover the bulk of a
        # well-connected universe.
        coverage = len(tiny_pipeline.crawl.dataset) / len(tiny_pipeline.universe)
        assert coverage > 0.8

    def test_filter_shape_matches_paper(self, tiny_pipeline):
        report = tiny_pipeline.filter_report
        # Paper §2: no-tags removals are rare (~0.6%), popularity removals
        # dominate (~34%), retention ≈ 65%.
        assert report.removed_no_tags < 0.05 * report.input_videos
        assert 0.2 < report.removed_bad_popularity / report.input_videos < 0.5
        assert 0.5 < report.retention_rate < 0.8

    def test_crawl_budget_respected(self):
        result = run_pipeline(
            PipelineConfig(
                universe=UniverseConfig(n_videos=200, n_tags=100, seed=5),
                crawl_budget=50,
            )
        )
        assert len(result.crawl.dataset) == 50

    def test_fault_rate_propagates(self):
        result = run_pipeline(
            PipelineConfig(
                universe=UniverseConfig(n_videos=150, n_tags=100, seed=6),
                crawl_budget=100,
                fault_rate=0.1,
            )
        )
        assert result.crawl.stats.transient_errors > 0
        assert len(result.crawl.dataset) == 100

    def test_quota_limit_propagates(self):
        result = run_pipeline(
            PipelineConfig(
                universe=UniverseConfig(n_videos=150, n_tags=100, seed=6),
                quota_limit=200,
            )
        )
        assert result.crawl.stats.stopped_by_quota

    def test_deterministic(self):
        config = PipelineConfig(
            universe=UniverseConfig(n_videos=120, n_tags=100, seed=9),
            crawl_budget=80,
        )
        a = run_pipeline(config)
        b = run_pipeline(config)
        assert a.dataset.video_ids() == b.dataset.video_ids()
