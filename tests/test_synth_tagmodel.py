"""Unit tests for the tag vocabulary."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.geo_profiles import ProfileKind
from repro.synth.rng import spawn_rng
from repro.synth.tagmodel import CURATED_TAGS, TagVocabulary


@pytest.fixture(scope="module")
def vocabulary():
    return TagVocabulary(n_tags=500, rng=spawn_rng(3, "vocab-test"))


class TestConstruction:
    def test_size(self, vocabulary):
        assert len(vocabulary) == 500

    def test_names_unique(self, vocabulary):
        names = vocabulary.names()
        assert len(names) == len(set(names))

    def test_too_small_vocabulary_rejected(self):
        with pytest.raises(ConfigError):
            TagVocabulary(n_tags=5)

    def test_bad_zipf_exponent_rejected(self):
        with pytest.raises(ConfigError):
            TagVocabulary(n_tags=100, zipf_exponent=0.0)

    def test_all_curated_tags_present(self, vocabulary):
        for name, _, _ in CURATED_TAGS:
            assert name in vocabulary

    def test_deterministic_given_rng_seed(self):
        a = TagVocabulary(n_tags=100, rng=spawn_rng(5, "v"))
        b = TagVocabulary(n_tags=100, rng=spawn_rng(5, "v"))
        assert a.names() == b.names()


class TestCuratedPlacement:
    def test_global_head(self, vocabulary):
        # The most frequent tags are the curated global ones; 'pop' is in
        # the top ranks as the paper reports.
        assert vocabulary.by_rank(1).name == "music"
        assert vocabulary.by_rank(2).name == "pop"
        assert vocabulary.get("pop").kind is ProfileKind.GLOBAL

    def test_favela_is_brazil_anchored(self, vocabulary):
        favela = vocabulary.get("favela")
        assert favela.kind is ProfileKind.COUNTRY
        assert favela.profile.anchor == "BR"

    def test_local_exemplars_are_niche_not_head(self, vocabulary):
        # Geographically anchored exemplars must sit outside the top 20
        # ranks (the paper's point: local content is niche).
        for name in ("favela", "bollywood", "sumo", "tango"):
            assert vocabulary.get(name).rank > 20

    def test_local_exemplars_still_measurable(self, vocabulary):
        for name in ("favela", "bollywood"):
            assert vocabulary.get(name).rank <= 250


class TestZipfWeights:
    def test_weights_decay_with_rank(self, vocabulary):
        weights = [vocabulary.by_rank(r).weight for r in (1, 10, 100, 500)]
        assert weights == sorted(weights, reverse=True)

    def test_weight_formula(self, vocabulary):
        tag = vocabulary.by_rank(10)
        assert tag.weight == pytest.approx(10 ** (-1.1))


class TestSampling:
    def test_sample_tags_distinct(self, vocabulary):
        rng = spawn_rng(1, "sampling")
        tags = vocabulary.sample_tags(rng, 10)
        names = [tag.name for tag in tags]
        assert len(names) == len(set(names)) == 10

    def test_sample_zero_is_empty(self, vocabulary):
        assert vocabulary.sample_tags(spawn_rng(1, "s"), 0) == []

    def test_head_oversampled(self, vocabulary):
        rng = spawn_rng(2, "head")
        first_draws = [vocabulary.sample_tags(rng, 1)[0].rank for _ in range(300)]
        assert np.median(first_draws) < 50

    def test_coherent_sampling_stays_in_group(self, vocabulary):
        rng = spawn_rng(3, "coherent")
        in_group = 0
        total = 0
        for _ in range(100):
            tags = vocabulary.sample_coherent_tags(rng, 6, coherence=1.0)
            primary_group = vocabulary.group_key(tags[0].name)
            for tag in tags[1:]:
                total += 1
                if vocabulary.group_key(tag.name) == primary_group:
                    in_group += 1
        # coherence=1.0 keeps draws in-group whenever the group is big
        # enough; demand a strong majority.
        assert in_group / total > 0.8

    def test_zero_coherence_behaves_like_independent(self, vocabulary):
        rng = spawn_rng(4, "incoherent")
        tags = vocabulary.sample_coherent_tags(rng, 8, coherence=0.0)
        assert len(tags) == 8

    def test_invalid_coherence_rejected(self, vocabulary):
        with pytest.raises(ConfigError):
            vocabulary.sample_coherent_tags(spawn_rng(1, "x"), 3, coherence=1.5)

    def test_unknown_tag_lookup_rejected(self, vocabulary):
        with pytest.raises(ConfigError):
            vocabulary.get("definitely-not-a-tag")
