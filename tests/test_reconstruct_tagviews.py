"""Unit tests for the Eq. (3) tag view table."""

import numpy as np
import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import AnalysisError
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor

IDS = [f"AAAAAAAAA{i:02d}" for i in range(10)]


def video(video_id, views, tags, pop):
    return Video(
        video_id=video_id,
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector(pop) if pop is not None else None,
    )


@pytest.fixture()
def small_table(traffic):
    dataset = Dataset(
        [
            video(IDS[0], 100, ("a", "b"), {"BR": 61}),
            video(IDS[1], 50, ("b",), {"US": 61}),
            video(IDS[2], 10, ("c",), None),  # no map → ignored
            video(IDS[3], 10, (), {"US": 61}),  # no tags → ignored
        ]
    )
    return TagViewsTable(dataset, ViewReconstructor(traffic))


class TestEquationThree:
    def test_aggregation_is_sum_over_videos(self, small_table, registry):
        views_b = small_table.views_for("b")
        # b carries video0 (100 views, all BR) + video1 (50 views, all US).
        assert views_b[registry.index_of("BR")] == pytest.approx(100)
        assert views_b[registry.index_of("US")] == pytest.approx(50)
        assert small_table.total_views("b") == pytest.approx(150)

    def test_single_video_tag(self, small_table, registry):
        views_a = small_table.views_for("a")
        assert views_a[registry.index_of("BR")] == pytest.approx(100)
        assert small_table.video_count("a") == 1

    def test_ineligible_videos_excluded(self, small_table):
        assert "c" not in small_table  # its only video had no map
        assert len(small_table) == 2

    def test_unknown_tag_rejected(self, small_table):
        with pytest.raises(AnalysisError):
            small_table.views_for("zzz")

    def test_shares_normalized(self, small_table):
        assert small_table.shares_for("b").sum() == pytest.approx(1.0)

    def test_views_for_returns_copy(self, small_table):
        first = small_table.views_for("a")
        first[0] = 1e9
        assert small_table.views_for("a")[0] != 1e9

    def test_top_country(self, small_table):
        assert small_table.top_country("a") == "BR"

    def test_top_tags_by_views_ordering(self, small_table):
        ranking = small_table.top_tags_by_views(5)
        assert ranking[0][0] == "b"
        values = [views for _, views in ranking]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize("engine", ["scalar", "columnar"])
    def test_duplicate_tags_counted_once(self, traffic, engine):
        """Regression: a video listing the same tag twice must contribute
        its views to that tag once, not twice.

        ``normalize_tags`` dedupes at construction, so the duplicate is
        forced past it — modelling records that bypass normalization.
        """
        dup = video(IDS[0], 100, ("a",), {"BR": 61})
        object.__setattr__(dup, "tags", ("a", "a", "b", "a"))
        table = TagViewsTable(
            Dataset([dup]), ViewReconstructor(traffic), engine=engine
        )
        assert table.total_views("a") == pytest.approx(100)
        assert table.video_count("a") == 1
        assert table.tags() == ["a", "b"]


class TestOnPipelineData:
    def test_table_covers_all_filtered_tags(self, tiny_pipeline):
        table = tiny_pipeline.tag_table
        dataset_tags = set()
        for video_record in tiny_pipeline.dataset:
            dataset_tags.update(video_record.tags)
        assert set(table.tags()) == dataset_tags

    def test_total_mass_equals_tag_weighted_views(self, tiny_pipeline):
        # Σ_t Σ_c views(t)[c] = Σ_v |tags(v)| × views(v) over eligible
        # videos (each video counted once per carried tag).
        table = tiny_pipeline.tag_table
        total_table = sum(vec.sum() for _, vec in table.items())
        expected = sum(
            len(v.tags) * v.views for v in tiny_pipeline.dataset
        )
        assert total_table == pytest.approx(expected, rel=1e-9)

    def test_video_counts_match_dataset_index(self, tiny_pipeline):
        table = tiny_pipeline.tag_table
        freq = tiny_pipeline.dataset.tag_frequencies()
        for tag in list(table.tags())[:50]:
            assert table.video_count(tag) == freq[tag]
