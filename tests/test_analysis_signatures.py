"""Tests for per-country tag signatures."""

import pytest

from repro.analysis.signatures import CountrySignatures
from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import AnalysisError
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor

IDS = [f"AAAAAAAAA{i:02d}" for i in range(10)]


@pytest.fixture()
def toy_signatures(traffic):
    # Three BR-only videos with tag 'samba', three US-only with 'nfl',
    # three worldwide-ish with 'pop'.
    videos = []
    for i in range(3):
        videos.append(
            Video(
                video_id=IDS[i], title="t", uploader="u",
                upload_date="2010-01-01", views=100,
                tags=("samba",), popularity=PopularityVector({"BR": 61}),
            )
        )
        videos.append(
            Video(
                video_id=IDS[3 + i], title="t", uploader="u",
                upload_date="2010-01-01", views=100,
                tags=("nfl",), popularity=PopularityVector({"US": 61}),
            )
        )
        videos.append(
            Video(
                video_id=IDS[6 + i], title="t", uploader="u",
                upload_date="2010-01-01", views=100,
                tags=("pop",),
                popularity=PopularityVector({"US": 61, "BR": 61, "JP": 61}),
            )
        )
    table = TagViewsTable(Dataset(videos), ViewReconstructor(traffic))
    return CountrySignatures(table, min_videos=3)


class TestToySignatures:
    def test_anchored_tag_tops_its_country(self, toy_signatures):
        brazil = toy_signatures.signature("BR", count=3)
        assert brazil[0].tag == "samba"
        assert brazil[0].lift > 1.0
        usa = toy_signatures.signature("US", count=3)
        assert usa[0].tag == "nfl"

    def test_foreign_tag_has_zero_share(self, toy_signatures):
        brazil = {entry.tag: entry for entry in toy_signatures.signature("BR", 10)}
        assert brazil["nfl"].country_share == pytest.approx(0.0)

    def test_lift_matches_shares(self, toy_signatures):
        entry = next(
            e for e in toy_signatures.signature("BR", 10) if e.tag == "samba"
        )
        assert entry.lift == pytest.approx(
            entry.country_share / toy_signatures.baseline_share("BR")
        )

    def test_min_videos_filters(self, traffic):
        videos = [
            Video(
                video_id=IDS[0], title="t", uploader="u",
                upload_date="2010-01-01", views=100,
                tags=("lonely",), popularity=PopularityVector({"BR": 61}),
            )
        ]
        table = TagViewsTable(Dataset(videos), ViewReconstructor(traffic))
        signatures = CountrySignatures(table, min_videos=2)
        assert signatures.signature("BR", 5) == []

    def test_invalid_min_videos(self, toy_signatures):
        with pytest.raises(AnalysisError):
            CountrySignatures(toy_signatures.table, min_videos=0)


class TestOnPipelineData:
    @pytest.fixture(scope="class")
    def signatures(self, tiny_pipeline):
        return CountrySignatures(tiny_pipeline.tag_table, min_videos=3)

    def test_signatures_sorted_by_lift(self, signatures):
        entries = signatures.signature("BR", 10)
        lifts = [entry.lift for entry in entries]
        assert lifts == sorted(lifts, reverse=True)

    def test_top_lift_exceeds_one(self, signatures):
        entries = signatures.signature("JP", 5)
        if entries:
            assert entries[0].lift > 1.0

    def test_baseline_shares_form_distribution(self, signatures, registry):
        total = sum(
            signatures.baseline_share(code) for code in registry.codes()
        )
        assert total == pytest.approx(1.0)
