"""Tests for the fault-injecting TCP proxy."""

import pytest

from repro.api.chaos import FAULT_KINDS, ChaosProxy
from repro.api.service import YoutubeService
from repro.api.transport import RemoteYoutubeClient, YoutubeAPIServer
from repro.errors import ConfigError, TransportError, VideoNotFoundError


@pytest.fixture()
def server(tiny_universe):
    with YoutubeAPIServer(YoutubeService(tiny_universe)) as running:
        yield running


def _proxy(server, **kwargs):
    return ChaosProxy(server.host, server.port, **kwargs)


class TestPassthrough:
    def test_clean_proxy_is_transparent(self, server, tiny_universe):
        with _proxy(server) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                info = client.describe()
                assert info["videos"] == len(tiny_universe)
                video_id = tiny_universe.video_ids()[0]
                video = client.get_video(video_id)
                assert video.video_id == video_id
            assert proxy.requests_seen >= 2
            assert proxy.faults_injected == 0

    def test_api_errors_still_cross_the_proxy(self, server):
        with _proxy(server) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(VideoNotFoundError) as excinfo:
                    client.get_video("AAAAAAAAAAA")
                assert excinfo.value.video_id == "AAAAAAAAAAA"

    def test_upstream_down_closes_the_client(self, server, tiny_universe):
        with _proxy(server) as proxy:
            server.stop()
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(TransportError):
                    client.describe()


class TestFaultInjection:
    def test_garbled_frame_raises_transport_error(self, server, tiny_universe):
        with _proxy(
            server, fault_rate=0.999_999, seed=3, kinds=("garble",)
        ) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(TransportError):
                    client.describe()
            assert proxy.fault_counts["garble"] >= 1

    def test_reset_raises_transport_error(self, server):
        with _proxy(server, fault_rate=0.999_999, seed=3, kinds=("reset",)) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(TransportError):
                    client.describe()
            assert proxy.fault_counts["reset"] >= 1

    def test_hangup_raises_transport_error(self, server):
        with _proxy(server, fault_rate=0.999_999, seed=3, kinds=("hangup",)) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(TransportError):
                    client.describe()
            assert proxy.fault_counts["hangup"] >= 1

    def test_stall_eventually_drops_the_connection(self, server):
        with _proxy(
            server,
            fault_rate=0.999_999,
            seed=3,
            kinds=("stall",),
            stall_seconds=0.05,
        ) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                with pytest.raises(TransportError):
                    client.describe()
            assert proxy.fault_counts["stall"] >= 1

    def test_latency_fault_still_answers_correctly(self, server, tiny_universe):
        with _proxy(
            server,
            fault_rate=0.999_999,
            seed=3,
            kinds=("latency",),
            latency_seconds=0.01,
        ) as proxy:
            with RemoteYoutubeClient(proxy.host, proxy.port) as client:
                info = client.describe()
                assert info["videos"] == len(tiny_universe)
            assert proxy.fault_counts["latency"] >= 1


class TestDeterminism:
    def _decision_trace(self, seed, n=200, **kwargs):
        proxy = ChaosProxy("127.0.0.1", 1, fault_rate=0.3, seed=seed, **kwargs)
        try:
            return [proxy._decide() for _ in range(n)]
        finally:
            proxy._server.server_close()

    def test_same_seed_same_fault_pattern(self):
        assert self._decision_trace(seed=11) == self._decision_trace(seed=11)

    def test_different_seed_different_pattern(self):
        assert self._decision_trace(seed=11) != self._decision_trace(seed=12)

    def test_burst_faults_arrive_consecutively(self):
        trace = self._decision_trace(seed=5, burst_length=4)
        # Every decision within one 4-wide window must be identical.
        for start in range(0, len(trace), 4):
            window = trace[start : start + 4]
            assert len(set(window)) == 1

    def test_counters_add_up(self):
        proxy = ChaosProxy("127.0.0.1", 1, fault_rate=0.3, seed=2)
        try:
            decisions = [proxy._decide() for _ in range(300)]
            injected = sum(1 for d in decisions if d is not None)
            assert proxy.requests_seen == 300
            assert proxy.faults_injected == injected
            assert sum(proxy.fault_counts.values()) == injected
            assert 0 < injected < 300
        finally:
            proxy._server.server_close()


class TestConfig:
    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            ChaosProxy("127.0.0.1", 1, fault_rate=1.0)
        with pytest.raises(ConfigError):
            ChaosProxy("127.0.0.1", 1, fault_rate=-0.1)

    def test_burst_and_kinds_validation(self):
        with pytest.raises(ConfigError):
            ChaosProxy("127.0.0.1", 1, burst_length=0)
        with pytest.raises(ConfigError):
            ChaosProxy("127.0.0.1", 1, kinds=("reset", "nope"))
        with pytest.raises(ConfigError):
            ChaosProxy("127.0.0.1", 1, kinds=())

    def test_all_kinds_are_known(self):
        assert set(FAULT_KINDS) == {"reset", "hangup", "latency", "stall", "garble"}
