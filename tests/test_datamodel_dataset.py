"""Unit tests for the Dataset container and the §2 filter funnel."""

import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import DatasetError

IDS = [f"AAAAAAAAA{i:02d}" for i in range(20)]


def video(video_id, views=100, tags=("music",), pop={"US": 61}):
    return Video(
        video_id=video_id,
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector(pop) if pop is not None else None,
    )


class TestContainer:
    def test_add_and_get(self):
        ds = Dataset([video(IDS[0])])
        assert len(ds) == 1
        assert ds.get(IDS[0]).video_id == IDS[0]

    def test_duplicate_id_rejected(self):
        ds = Dataset([video(IDS[0])])
        with pytest.raises(DatasetError):
            ds.add(video(IDS[0]))

    def test_get_missing_raises(self):
        with pytest.raises(DatasetError):
            Dataset().get(IDS[0])

    def test_contains(self):
        ds = Dataset([video(IDS[0])])
        assert IDS[0] in ds
        assert IDS[1] not in ds

    def test_insertion_order_preserved(self):
        ds = Dataset([video(IDS[2]), video(IDS[0]), video(IDS[1])])
        assert ds.video_ids() == [IDS[2], IDS[0], IDS[1]]


class TestPaperFilter:
    def test_funnel_counts(self):
        ds = Dataset(
            [
                video(IDS[0]),                      # kept
                video(IDS[1], tags=()),             # no tags
                video(IDS[2], pop=None),            # missing map
                video(IDS[3], pop={}),              # empty map
                video(IDS[4]),                      # kept
            ]
        )
        filtered, report = ds.apply_paper_filter()
        assert report.input_videos == 5
        assert report.removed_no_tags == 1
        assert report.removed_bad_popularity == 2
        assert report.retained == 2
        assert len(filtered) == 2

    def test_no_tags_counted_before_popularity(self):
        # A video failing both filters counts in the no-tags bucket,
        # mirroring the paper's narration order.
        ds = Dataset([video(IDS[0], tags=(), pop=None)])
        _, report = ds.apply_paper_filter()
        assert report.removed_no_tags == 1
        assert report.removed_bad_popularity == 0

    def test_retention_rate(self):
        ds = Dataset([video(IDS[0]), video(IDS[1], tags=())])
        _, report = ds.apply_paper_filter()
        assert report.retention_rate == pytest.approx(0.5)

    def test_empty_dataset_funnel(self):
        _, report = Dataset().apply_paper_filter()
        assert report.input_videos == 0
        assert report.retention_rate == 0.0

    def test_funnel_conserves_videos(self, tiny_pipeline):
        report = tiny_pipeline.filter_report
        assert (
            report.removed_no_tags
            + report.removed_bad_popularity
            + report.retained
            == report.input_videos
        )


class TestStats:
    def test_stats_on_small_corpus(self):
        ds = Dataset(
            [
                video(IDS[0], views=10, tags=("a", "b")),
                video(IDS[1], views=30, tags=("b", "c")),
            ]
        )
        stats = ds.stats()
        assert stats.videos == 2
        assert stats.unique_tags == 3
        assert stats.total_views == 40
        assert stats.tags_per_video_mean == pytest.approx(2.0)
        assert stats.views_max == 30

    def test_stats_empty_dataset(self):
        stats = Dataset().stats()
        assert stats.videos == 0
        assert stats.tags_per_video_mean == 0.0


class TestTagIndex:
    def test_tag_index_maps_videos(self):
        ds = Dataset(
            [video(IDS[0], tags=("a", "b")), video(IDS[1], tags=("b",))]
        )
        index = ds.tag_index()
        assert index["a"] == [IDS[0]]
        assert index["b"] == [IDS[0], IDS[1]]

    def test_index_invalidated_by_add(self):
        ds = Dataset([video(IDS[0], tags=("a",))])
        assert len(ds.tag_index()["a"]) == 1
        ds.add(video(IDS[1], tags=("a",)))
        assert len(ds.tag_index()["a"]) == 2

    def test_videos_with_unknown_tag_empty(self):
        assert Dataset().videos_with_tag("nope") == []

    def test_tag_frequencies(self):
        ds = Dataset(
            [video(IDS[0], tags=("a", "b")), video(IDS[1], tags=("a",))]
        )
        freq = ds.tag_frequencies()
        assert freq["a"] == 2
        assert freq["b"] == 1

    def test_tag_view_totals(self):
        ds = Dataset(
            [
                video(IDS[0], views=10, tags=("a",)),
                video(IDS[1], views=5, tags=("a", "b")),
            ]
        )
        totals = ds.tag_view_totals()
        assert totals["a"] == 15
        assert totals["b"] == 5

    def test_most_viewed_video(self):
        ds = Dataset([video(IDS[0], views=5), video(IDS[1], views=50)])
        assert ds.most_viewed_video().video_id == IDS[1]

    def test_most_viewed_on_empty_raises(self):
        with pytest.raises(DatasetError):
            Dataset().most_viewed_video()
