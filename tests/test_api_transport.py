"""Tests for the TCP transport: server, client, and crawls over the wire."""

import threading

import pytest

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import YoutubeService
from repro.api.transport import (
    RemoteYoutubeClient,
    TransportError,
    YoutubeAPIServer,
)
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.errors import (
    BadRequestError,
    QuotaExceededError,
    TransientAPIError,
    VideoNotFoundError,
)


@pytest.fixture()
def server(tiny_universe):
    with YoutubeAPIServer(YoutubeService(tiny_universe)) as running:
        yield running


@pytest.fixture()
def client(server):
    with RemoteYoutubeClient(server.host, server.port) as remote:
        yield remote


class TestProtocol:
    def test_describe_handshake(self, client, tiny_universe):
        info = client.describe()
        assert info["videos"] == len(tiny_universe)
        assert info["countries"] == tiny_universe.registry.codes()

    def test_get_video_matches_local(self, client, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        local = YoutubeService(tiny_universe).get_video(video_id)
        remote = client.get_video(video_id)
        assert remote == local

    def test_pagination_over_the_wire(self, client, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        expected = tiny_universe.get(video_id).related_ids
        collected = []
        token = None
        while True:
            page = client.related_videos(video_id, page_token=token, max_results=7)
            collected.extend(page.items)
            token = page.next_page_token
            if token is None:
                break
        assert tuple(collected) == expected

    def test_most_popular_over_the_wire(self, client, tiny_universe):
        page = client.most_popular("BR", max_results=10)
        assert list(page.items) == tiny_universe.most_popular("BR", 10)


class TestErrorFidelity:
    def test_not_found_reraised_with_id(self, client):
        with pytest.raises(VideoNotFoundError) as excinfo:
            client.get_video("AAAAAAAAAAA")
        assert excinfo.value.video_id == "AAAAAAAAAAA"

    def test_bad_request_reraised(self, client, tiny_universe):
        with pytest.raises(BadRequestError):
            client.related_videos(
                tiny_universe.video_ids()[0], max_results=999
            )

    def test_quota_error_crosses_the_wire(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=1))
        with YoutubeAPIServer(service) as running:
            with RemoteYoutubeClient(running.host, running.port) as remote:
                remote.get_video(tiny_universe.video_ids()[0])
                with pytest.raises(QuotaExceededError):
                    remote.get_video(tiny_universe.video_ids()[1])

    def test_transient_error_crosses_the_wire(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.999_999, seed=1)
        )
        with YoutubeAPIServer(service) as running:
            with RemoteYoutubeClient(running.host, running.port) as remote:
                with pytest.raises(TransientAPIError):
                    remote.get_video(tiny_universe.video_ids()[0])

    def test_connect_failure_is_transport_error(self):
        with pytest.raises(TransportError):
            RemoteYoutubeClient("127.0.0.1", 1, timeout=0.5)


class TestCrawlOverTheWire:
    def test_sequential_crawl_remote_equals_local(self, server, tiny_universe):
        local = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=60
        ).run()
        with RemoteYoutubeClient(server.host, server.port) as remote:
            over_wire = SnowballCrawler(remote, max_videos=60).run()
        assert over_wire.dataset.video_ids() == local.dataset.video_ids()
        for video in over_wire.dataset:
            assert video == local.dataset.get(video.video_id)

    def test_parallel_crawl_over_shared_client(self, server, tiny_universe):
        with RemoteYoutubeClient(server.host, server.port) as remote:
            result = ParallelSnowballCrawler(
                remote, workers=4, max_videos=80
            ).run()
        assert len(result.dataset) == 80

    def test_multiple_concurrent_clients(self, server, tiny_universe):
        results = {}

        def crawl(name):
            with RemoteYoutubeClient(server.host, server.port) as remote:
                results[name] = SnowballCrawler(remote, max_videos=30).run()

        threads = [
            threading.Thread(target=crawl, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 3
        reference = results[0].dataset.video_ids()
        for name in (1, 2):
            assert results[name].dataset.video_ids() == reference
