"""Tests for the TCP transport: server, client, and crawls over the wire."""

import json
import socket
import threading

import pytest

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import YoutubeService
from repro.api.transport import (
    RemoteYoutubeClient,
    TransportError,
    YoutubeAPIServer,
)
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.errors import (
    BadRequestError,
    QuotaExceededError,
    TransientAPIError,
    VideoNotFoundError,
)


@pytest.fixture()
def server(tiny_universe):
    with YoutubeAPIServer(YoutubeService(tiny_universe)) as running:
        yield running


@pytest.fixture()
def client(server):
    with RemoteYoutubeClient(server.host, server.port) as remote:
        yield remote


class TestProtocol:
    def test_describe_handshake(self, client, tiny_universe):
        info = client.describe()
        assert info["videos"] == len(tiny_universe)
        assert info["countries"] == tiny_universe.registry.codes()

    def test_get_video_matches_local(self, client, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        local = YoutubeService(tiny_universe).get_video(video_id)
        remote = client.get_video(video_id)
        assert remote == local

    def test_pagination_over_the_wire(self, client, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        expected = tiny_universe.get(video_id).related_ids
        collected = []
        token = None
        while True:
            page = client.related_videos(video_id, page_token=token, max_results=7)
            collected.extend(page.items)
            token = page.next_page_token
            if token is None:
                break
        assert tuple(collected) == expected

    def test_most_popular_over_the_wire(self, client, tiny_universe):
        page = client.most_popular("BR", max_results=10)
        assert list(page.items) == tiny_universe.most_popular("BR", 10)


class TestErrorFidelity:
    def test_not_found_reraised_with_id(self, client):
        with pytest.raises(VideoNotFoundError) as excinfo:
            client.get_video("AAAAAAAAAAA")
        assert excinfo.value.video_id == "AAAAAAAAAAA"

    def test_bad_request_reraised(self, client, tiny_universe):
        with pytest.raises(BadRequestError):
            client.related_videos(
                tiny_universe.video_ids()[0], max_results=999
            )

    def test_quota_error_crosses_the_wire(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=1))
        with YoutubeAPIServer(service) as running:
            with RemoteYoutubeClient(running.host, running.port) as remote:
                remote.get_video(tiny_universe.video_ids()[0])
                with pytest.raises(QuotaExceededError):
                    remote.get_video(tiny_universe.video_ids()[1])

    def test_transient_error_crosses_the_wire(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.999_999, seed=1)
        )
        with YoutubeAPIServer(service) as running:
            with RemoteYoutubeClient(running.host, running.port) as remote:
                with pytest.raises(TransientAPIError):
                    remote.get_video(tiny_universe.video_ids()[0])

    def test_connect_failure_is_transport_error(self):
        with pytest.raises(TransportError):
            RemoteYoutubeClient("127.0.0.1", 1, timeout=0.5)

    def test_not_found_video_id_is_transported_structurally(self, server):
        # Ids containing quotes must survive the wire: the payload
        # carries the structured id, not a parse of the message text.
        awkward = "it's 'quoted'"
        with RemoteYoutubeClient(server.host, server.port) as remote:
            with pytest.raises(VideoNotFoundError) as excinfo:
                remote.get_video(awkward)
        assert excinfo.value.video_id == awkward


def _scripted_server(script):
    """A one-connection TCP server running ``script(conn)`` then closing.

    Returns ``(port, thread)``; the thread is a daemon and joins fast.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def serve():
        conn, _ = listener.accept()
        try:
            script(conn)
        finally:
            conn.close()
            listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return port, thread


def _read_request(conn):
    return conn.makefile("rb").readline()


def _raw_client(port):
    return RemoteYoutubeClient("127.0.0.1", port, timeout=2.0)


def _resilient_client(port):
    from repro.api.resilient import ResilientYoutubeClient
    from repro.resilience import RetryPolicy

    # Two attempts: the scripted server serves one connection, so the
    # retry hits a refused connect and the original class must survive.
    return ResilientYoutubeClient(
        "127.0.0.1",
        port,
        timeout=2.0,
        retry=RetryPolicy(
            max_attempts=2, backoff_base=0.0, retryable=(TransportError,)
        ),
    )


@pytest.fixture(params=["raw", "resilient"])
def make_client(request):
    return _raw_client if request.param == "raw" else _resilient_client


class TestTransportFailurePaths:
    """Exact exception classes for every way the wire can betray us."""

    def test_server_closes_mid_request(self, make_client):
        port, _ = _scripted_server(lambda conn: _read_request(conn))
        with make_client(port) as client:
            with pytest.raises(TransportError) as excinfo:
                client.describe()
        assert type(excinfo.value) is TransportError

    def test_empty_reply_frame(self, make_client):
        def script(conn):
            _read_request(conn)
            conn.sendall(b"\n")

        port, _ = _scripted_server(script)
        with make_client(port) as client:
            with pytest.raises(TransportError) as excinfo:
                client.describe()
        assert type(excinfo.value) is TransportError

    def test_garbled_json_frame(self, make_client):
        def script(conn):
            _read_request(conn)
            conn.sendall(b"{this is not json\n")

        port, _ = _scripted_server(script)
        with make_client(port) as client:
            with pytest.raises(TransportError) as excinfo:
                client.describe()
        assert type(excinfo.value) is TransportError

    def test_non_object_reply_frame(self, make_client):
        def script(conn):
            _read_request(conn)
            conn.sendall(b"[1, 2, 3]\n")

        port, _ = _scripted_server(script)
        with make_client(port) as client:
            with pytest.raises(TransportError) as excinfo:
                client.describe()
        assert type(excinfo.value) is TransportError

    def test_response_id_mismatch(self, make_client):
        def script(conn):
            _read_request(conn)
            stale = {"id": 999, "ok": True, "result": {}}
            conn.sendall(json.dumps(stale).encode("utf-8") + b"\n")

        port, _ = _scripted_server(script)
        with make_client(port) as client:
            with pytest.raises(TransportError, match="id mismatch|connect") as excinfo:
                client.describe()
        assert type(excinfo.value) is TransportError

    def test_matching_id_is_accepted(self):
        def script(conn):
            request = json.loads(_read_request(conn))
            reply = {"id": request["id"], "ok": True, "result": {"videos": 1}}
            conn.sendall(json.dumps(reply).encode("utf-8") + b"\n")

        port, _ = _scripted_server(script)
        with RemoteYoutubeClient("127.0.0.1", port, timeout=2.0) as client:
            assert client.describe() == {"videos": 1}


class TestCrawlOverTheWire:
    def test_sequential_crawl_remote_equals_local(self, server, tiny_universe):
        local = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=60
        ).run()
        with RemoteYoutubeClient(server.host, server.port) as remote:
            over_wire = SnowballCrawler(remote, max_videos=60).run()
        assert over_wire.dataset.video_ids() == local.dataset.video_ids()
        for video in over_wire.dataset:
            assert video == local.dataset.get(video.video_id)

    def test_parallel_crawl_over_shared_client(self, server, tiny_universe):
        with RemoteYoutubeClient(server.host, server.port) as remote:
            result = ParallelSnowballCrawler(
                remote, workers=4, max_videos=80
            ).run()
        assert len(result.dataset) == 80

    def test_multiple_concurrent_clients(self, server, tiny_universe):
        results = {}

        def crawl(name):
            with RemoteYoutubeClient(server.host, server.port) as remote:
                results[name] = SnowballCrawler(remote, max_videos=30).run()

        threads = [
            threading.Thread(target=crawl, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 3
        reference = results[0].dataset.video_ids()
        for name in (1, 2):
            assert results[name].dataset.video_ids() == reference
