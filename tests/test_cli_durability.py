"""CLI tests for the durability verbs: ``repro resume`` and ``repro verify``."""

import pytest

from repro.cli import main
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.store import VideoStore
from repro.datamodel.video import Video
from repro.durability import artifacts


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """A completed tiny-preset resumable pipeline run."""
    path = tmp_path_factory.mktemp("cli_workdir")
    assert main(["resume", "--workdir", str(path), "--preset", "tiny"]) == 0
    return path


class TestResumeCommand:
    def test_first_run_reports_stats(self, workdir, capsys):
        # workdir fixture already ran; re-run and capture this one.
        assert (
            main(["resume", "--workdir", str(workdir), "--preset", "tiny"]) == 0
        )
        out = capsys.readouterr().out
        assert "pipeline complete" in out
        assert "skipped (already durable)" in out
        assert "universe, crawl, filter, reconstruct" in out

    def test_mismatched_preset_fails_loudly(self, workdir, capsys):
        rc = main(["resume", "--workdir", str(workdir), "--preset", "small"])
        assert rc == 2
        assert "different pipeline config" in capsys.readouterr().err


class TestVerifyCommand:
    def test_clean_workdir_verifies(self, workdir, capsys):
        assert main(["verify", "--workdir", str(workdir)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "crawl.jsonl" in out

    def test_bit_flip_detected_and_quarantined(self, workdir, capsys):
        target = workdir / "tag_views.json"
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0x20
        target.write_bytes(bytes(blob))

        rc = main(["verify", "--workdir", str(workdir)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "CORRUPT" in captured.err
        assert str(target) in captured.err
        assert "tag_views.json.quarantined" in captured.err
        assert not target.exists()
        # Put the stage back for other tests: resume recomputes it.
        assert (
            main(["resume", "--workdir", str(workdir), "--preset", "tiny"]) == 0
        )

    def test_no_quarantine_flag_leaves_file(self, tmp_path, capsys):
        path = tmp_path / "a.bin"
        artifacts.atomic_write_bytes(path, b"good", checksum=True)
        path.write_bytes(b"evil")
        rc = main(["verify", "--no-quarantine", str(path)])
        assert rc == 1
        assert path.exists()
        assert "CORRUPT" in capsys.readouterr().err

    def test_explicit_paths(self, tmp_path, capsys):
        path = tmp_path / "a.bin"
        artifacts.atomic_write_bytes(path, b"good", checksum=True)
        assert main(["verify", str(path)]) == 0

    def test_nothing_to_verify_is_an_error(self, capsys):
        assert main(["verify"]) == 2
        assert "nothing to verify" in capsys.readouterr().err

    def test_store_integrity_clean_and_corrupt(self, tmp_path, capsys):
        db = tmp_path / "videos.db"
        with VideoStore(db) as store:
            store.add_many(
                [
                    Video(
                        video_id=f"AAAAAAAA{i:03d}",
                        title="t",
                        uploader="u",
                        upload_date="2011-01-01",
                        views=i,
                        tags=("a",),
                        popularity=PopularityVector({"US": 61}),
                        related_ids=(),
                    )
                    for i in range(300)
                ]
            )
        assert main(["verify", "--store", str(db)]) == 0
        capsys.readouterr()

        blob = bytearray(db.read_bytes())
        middle = (len(blob) // 8192) // 2 * 8192
        blob[middle : middle + 4096] = b"\0" * 4096
        db.write_bytes(bytes(blob))
        rc = main(["verify", "--store", str(db)])
        assert rc == 1
        assert "CORRUPT" in capsys.readouterr().err
