"""Unit tests for deterministic fault injection."""

import pytest

from repro.api.faults import FaultInjector
from repro.errors import ConfigError, TransientAPIError


def run_requests(injector, count):
    failures = []
    for i in range(count):
        try:
            injector.before_request(f"req{i}")
        except TransientAPIError:
            failures.append(i)
    return failures


class TestFaultInjector:
    def test_zero_rate_never_fails(self):
        injector = FaultInjector(rate=0.0)
        assert run_requests(injector, 500) == []
        assert injector.faults_injected == 0

    def test_rate_roughly_respected(self):
        injector = FaultInjector(rate=0.2, seed=1)
        failures = run_requests(injector, 2000)
        assert 0.12 < len(failures) / 2000 < 0.28

    def test_deterministic_in_seed(self):
        a = run_requests(FaultInjector(rate=0.3, seed=9), 300)
        b = run_requests(FaultInjector(rate=0.3, seed=9), 300)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_requests(FaultInjector(rate=0.3, seed=1), 300)
        b = run_requests(FaultInjector(rate=0.3, seed=2), 300)
        assert a != b

    def test_failures_independent_of_description(self):
        a = FaultInjector(rate=0.3, seed=4)
        b = FaultInjector(rate=0.3, seed=4)
        failures_a = run_requests(a, 100)
        failures_b = []
        for i in range(100):
            try:
                b.before_request("completely-different-description")
            except TransientAPIError:
                failures_b.append(i)
        assert failures_a == failures_b

    def test_bursts_are_consecutive(self):
        injector = FaultInjector(rate=0.15, seed=3, burst_length=5)
        failures = run_requests(injector, 1000)
        # Every failing request's window fails entirely: failures come in
        # aligned runs of 5.
        windows = {i // 5 for i in failures}
        expected = sorted(w * 5 + offset for w in windows for offset in range(5))
        assert failures == expected

    def test_counters(self):
        injector = FaultInjector(rate=0.5, seed=2)
        run_requests(injector, 100)
        assert injector.requests_seen == 100
        assert injector.faults_injected > 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(rate=1.0)
        with pytest.raises(ConfigError):
            FaultInjector(rate=-0.1)
        with pytest.raises(ConfigError):
            FaultInjector(burst_length=0)
