"""Unit and property tests for the Eq. (1)–(2) view estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.popularity import MAX_INTENSITY, PopularityVector
from repro.datamodel.video import Video
from repro.errors import ReconstructionError
from repro.reconstruct.views import (
    ViewReconstructor,
    reconstruct_views,
    reconstruct_views_naive,
)
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model

VID = "dQw4w9WgXcQ"


def intensity_dicts():
    codes = default_registry().codes()
    return st.dictionaries(
        st.sampled_from(codes),
        st.integers(min_value=1, max_value=MAX_INTENSITY),
        min_size=1,
        max_size=len(codes),
    )


class TestReconstructViews:
    def test_mass_conservation(self, traffic):
        vector = PopularityVector({"US": 61, "SG": 61, "BR": 10})
        estimated = reconstruct_views(vector, 1_000_000, traffic)
        assert estimated.sum() == pytest.approx(1_000_000)

    def test_equal_intensity_splits_by_traffic(self, traffic, registry):
        # The paper's Fig. 1 argument: USA and Singapore share intensity
        # 61, but the USA must receive far more of the views.
        vector = PopularityVector({"US": 61, "SG": 61})
        estimated = reconstruct_views(vector, 1000, traffic)
        us = estimated[registry.index_of("US")]
        sg = estimated[registry.index_of("SG")]
        assert us > 20 * sg
        assert us / sg == pytest.approx(
            traffic.share("US") / traffic.share("SG")
        )

    def test_zero_intensity_countries_get_zero_views(self, traffic, registry):
        vector = PopularityVector({"BR": 61})
        estimated = reconstruct_views(vector, 1000, traffic)
        assert estimated[registry.index_of("BR")] == pytest.approx(1000)
        assert estimated[registry.index_of("US")] == 0.0

    def test_empty_vector_rejected(self, traffic):
        with pytest.raises(ReconstructionError):
            reconstruct_views(PopularityVector.empty(), 1000, traffic)

    def test_negative_views_rejected(self, traffic):
        with pytest.raises(ReconstructionError):
            reconstruct_views(PopularityVector({"BR": 61}), -1, traffic)

    def test_zero_views_gives_zero_vector(self, traffic):
        estimated = reconstruct_views(PopularityVector({"BR": 61}), 0, traffic)
        assert estimated.sum() == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        intensities=intensity_dicts(),
        views=st.integers(min_value=0, max_value=10**12),
    )
    def test_mass_conservation_property(self, intensities, views):
        traffic = default_traffic_model()
        vector = PopularityVector(intensities)
        estimated = reconstruct_views(vector, views, traffic)
        assert np.all(estimated >= 0)
        assert estimated.sum() == pytest.approx(views, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(intensities=intensity_dicts())
    def test_support_matches_popularity(self, intensities):
        traffic = default_traffic_model()
        registry = default_registry()
        vector = PopularityVector(intensities)
        estimated = reconstruct_views(vector, 10**6, traffic)
        for i, code in enumerate(registry.codes()):
            if vector[code] == 0:
                assert estimated[i] == 0.0
            else:
                assert estimated[i] > 0.0


class TestNaiveBaseline:
    def test_equal_intensity_splits_equally(self, registry):
        vector = PopularityVector({"US": 61, "SG": 61})
        estimated = reconstruct_views_naive(vector, 1000)
        assert estimated[registry.index_of("US")] == pytest.approx(
            estimated[registry.index_of("SG")]
        )

    def test_mass_conservation(self):
        vector = PopularityVector({"US": 61, "BR": 30})
        assert reconstruct_views_naive(vector, 999).sum() == pytest.approx(999)

    def test_empty_rejected(self):
        with pytest.raises(ReconstructionError):
            reconstruct_views_naive(PopularityVector.empty(), 10)


class TestViewReconstructor:
    def make_video(self, pop, views=1000):
        return Video(
            video_id=VID,
            title="t",
            uploader="u",
            upload_date="2010-01-01",
            views=views,
            tags=("music",),
            popularity=pop,
        )

    def test_for_video(self, traffic):
        reconstructor = ViewReconstructor(traffic)
        video = self.make_video(PopularityVector({"BR": 61}))
        assert reconstructor.for_video(video).sum() == pytest.approx(1000)

    def test_missing_popularity_rejected(self, traffic):
        reconstructor = ViewReconstructor(traffic)
        with pytest.raises(ReconstructionError):
            reconstructor.for_video(self.make_video(None))

    def test_shares_sum_to_one(self, traffic):
        reconstructor = ViewReconstructor(traffic)
        video = self.make_video(PopularityVector({"BR": 61, "US": 20}))
        assert reconstructor.shares_for_video(video).sum() == pytest.approx(1.0)

    def test_shares_defined_for_zero_view_video(self, traffic):
        reconstructor = ViewReconstructor(traffic)
        video = self.make_video(PopularityVector({"BR": 61}), views=0)
        shares = reconstructor.shares_for_video(video)
        assert shares.sum() == pytest.approx(1.0)

    def test_naive_mode(self, traffic, registry):
        reconstructor = ViewReconstructor(traffic, naive=True)
        video = self.make_video(PopularityVector({"US": 61, "SG": 61}))
        estimated = reconstructor.for_video(video)
        assert estimated[registry.index_of("US")] == pytest.approx(
            estimated[registry.index_of("SG")]
        )

    def test_for_dataset_skips_invalid(self, tiny_pipeline):
        reconstructor = tiny_pipeline.reconstructor
        raw = tiny_pipeline.crawl.dataset
        estimates = reconstructor.for_dataset(raw)
        eligible = sum(1 for v in raw if v.has_valid_popularity())
        assert len(estimates) == eligible

    def test_matrix_for_dataset(self, tiny_pipeline):
        reconstructor = tiny_pipeline.reconstructor
        ids, matrix = reconstructor.matrix_for_dataset(tiny_pipeline.dataset)
        assert matrix.shape == (len(ids), len(reconstructor.registry))
        views = np.array(
            [tiny_pipeline.dataset.get(video_id).views for video_id in ids]
        )
        assert np.allclose(matrix.sum(axis=1), views)
