"""Unit tests for the Video record and the paper's filter predicates."""

import pytest

from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video, is_valid_video_id
from repro.errors import InvalidVideoError

VALID_ID = "dQw4w9WgXcQ"
OTHER_ID = "kffacxfA7G4"


def make_video(**overrides):
    defaults = dict(
        video_id=VALID_ID,
        title="Test video",
        uploader="user000001",
        upload_date="2010-05-01",
        views=1000,
        tags=("music", "pop"),
        popularity=PopularityVector({"US": 61, "BR": 12}),
        related_ids=(OTHER_ID,),
    )
    defaults.update(overrides)
    return Video(**defaults)


class TestVideoIdValidation:
    def test_canonical_id_is_valid(self):
        assert is_valid_video_id(VALID_ID)

    def test_wrong_length_invalid(self):
        assert not is_valid_video_id("short")
        assert not is_valid_video_id(VALID_ID + "x")

    def test_bad_characters_invalid(self):
        assert not is_valid_video_id("dQw4w9WgXc!")

    def test_invalid_id_raises(self):
        with pytest.raises(InvalidVideoError):
            make_video(video_id="nope")

    def test_invalid_related_id_raises(self):
        with pytest.raises(InvalidVideoError):
            make_video(related_ids=("bad id",))


class TestConstruction:
    def test_negative_views_rejected(self):
        with pytest.raises(InvalidVideoError):
            make_video(views=-1)

    def test_tags_normalized_at_construction(self):
        video = make_video(tags=("  POP ", "pop", "Rock"))
        assert video.tags == ("pop", "rock")

    def test_related_ids_coerced_to_tuple(self):
        video = make_video(related_ids=[OTHER_ID])
        assert isinstance(video.related_ids, tuple)

    def test_frozen(self):
        video = make_video()
        with pytest.raises(AttributeError):
            video.views = 5


class TestPaperFilterPredicates:
    def test_fully_valid_video_passes(self):
        assert make_video().passes_paper_filter()

    def test_no_tags_fails(self):
        video = make_video(tags=())
        assert not video.has_tags()
        assert not video.passes_paper_filter()

    def test_missing_popularity_fails(self):
        video = make_video(popularity=None)
        assert not video.has_valid_popularity()
        assert not video.passes_paper_filter()

    def test_empty_popularity_fails(self):
        video = make_video(popularity=PopularityVector.empty())
        assert not video.has_valid_popularity()

    def test_whitespace_tags_count_as_untagged(self):
        video = make_video(tags=("  ", ""))
        assert not video.has_tags()
