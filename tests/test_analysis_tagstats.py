"""Unit tests for tag geography statistics and classification."""

import pytest

from repro.analysis.tagstats import (
    GLOBAL_JSD_THRESHOLD,
    LOCAL_JSD_THRESHOLD,
    TagGeographyReport,
    classify_tags,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def geo_report(tiny_pipeline):
    return TagGeographyReport(
        tiny_pipeline.tag_table,
        tiny_pipeline.universe.traffic,
        min_videos=3,
    )


class TestReport:
    def test_min_videos_threshold_respected(self, geo_report, tiny_pipeline):
        for stat in geo_report.all():
            assert tiny_pipeline.tag_table.video_count(stat.tag) >= 3

    def test_metrics_within_bounds(self, geo_report):
        for stat in geo_report.all():
            assert 0.0 <= stat.entropy <= 1.0
            assert 0.0 <= stat.gini < 1.0
            assert 0.0 < stat.hhi <= 1.0
            assert 0.0 < stat.top1_share <= 1.0
            assert stat.jsd_to_prior >= 0.0

    def test_get_and_contains(self, geo_report):
        stat = geo_report.all()[0]
        assert stat.tag in geo_report
        assert geo_report.get(stat.tag) is stat
        with pytest.raises(AnalysisError):
            geo_report.get("definitely-absent-tag")

    def test_top_country_consistent_with_top1(self, geo_report, tiny_pipeline):
        table = tiny_pipeline.tag_table
        for stat in geo_report.all()[:20]:
            assert stat.top_country == table.top_country(stat.tag)

    def test_pop_is_global(self, geo_report):
        # The paper's Fig. 2 exemplar.
        if "pop" in geo_report:
            assert geo_report.get("pop").classification == "global"

    def test_some_local_tags_exist(self, geo_report):
        assert geo_report.by_classification()["local"]

    def test_classification_thresholds(self, geo_report):
        for stat in geo_report.all():
            if stat.classification == "global":
                assert stat.jsd_to_prior <= GLOBAL_JSD_THRESHOLD
            elif stat.classification == "local":
                assert stat.jsd_to_prior >= LOCAL_JSD_THRESHOLD

    def test_most_global_sorted(self, geo_report):
        ranked = geo_report.most_global(10)
        values = [stat.jsd_to_prior for stat in ranked]
        assert values == sorted(values)

    def test_most_local_sorted(self, geo_report):
        ranked = geo_report.most_local(10)
        values = [stat.jsd_to_prior for stat in ranked]
        assert values == sorted(values, reverse=True)

    def test_most_viewed_sorted(self, geo_report):
        ranked = geo_report.most_viewed(10)
        values = [stat.total_views for stat in ranked]
        assert values == sorted(values, reverse=True)

    def test_local_tags_more_concentrated_than_global(self, geo_report):
        groups = geo_report.by_classification()
        if groups["global"] and groups["local"]:
            import numpy as np

            global_top1 = np.mean([s.top1_share for s in groups["global"]])
            local_top1 = np.mean([s.top1_share for s in groups["local"]])
            assert local_top1 > global_top1

    def test_invalid_min_videos_rejected(self, tiny_pipeline):
        with pytest.raises(AnalysisError):
            TagGeographyReport(tiny_pipeline.tag_table, min_videos=0)


class TestClassifyTags:
    def test_mapping_matches_report(self, tiny_pipeline, geo_report):
        mapping = classify_tags(
            tiny_pipeline.tag_table,
            tiny_pipeline.universe.traffic,
            min_videos=3,
        )
        assert len(mapping) == len(geo_report)
        for stat in geo_report.all()[:20]:
            assert mapping[stat.tag] == stat.classification
