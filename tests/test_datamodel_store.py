"""Tests for the SQLite-backed video store."""

import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.store import VideoStore
from repro.datamodel.video import Video
from repro.errors import DatasetError, DatasetIOError

IDS = [f"AAAAAAAAA{i:02d}" for i in range(20)]


def video(video_id, views=100, tags=("music",), pop={"US": 61}):
    return Video(
        video_id=video_id,
        title="Tïtle ✓",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector(pop) if pop is not None else None,
        related_ids=(IDS[-1],),
    )


class TestBasicOperations:
    def test_add_get_roundtrip(self):
        with VideoStore() as store:
            original = video(IDS[0])
            store.add(original)
            assert store.get(IDS[0]) == original
            assert IDS[0] in store
            assert len(store) == 1

    def test_missing_video_raises(self):
        with VideoStore() as store:
            with pytest.raises(DatasetError):
                store.get(IDS[0])

    def test_identical_duplicate_is_idempotent(self):
        # Distributed workers may legitimately visit the same video
        # twice (at-least-once delivery); re-adding the same payload is
        # a no-op, not an error.
        with VideoStore() as store:
            store.add(video(IDS[0]))
            store.add(video(IDS[0]))
            store.add_many([video(IDS[1]), video(IDS[0])])
            assert len(store) == 2
            assert store.get(IDS[0]) == video(IDS[0])

    def test_divergent_duplicate_rejected_atomically(self):
        with VideoStore() as store:
            store.add(video(IDS[0]))
            with pytest.raises(DatasetError):
                store.add_many([video(IDS[1]), video(IDS[0], views=999)])
            # The failed batch must not have been partially applied.
            assert IDS[1] not in store
            assert len(store) == 1

    def test_divergent_duplicate_error_names_the_colliding_id(self):
        with VideoStore() as store:
            store.add(video(IDS[3]))
            with pytest.raises(DatasetError, match=IDS[3]):
                store.add_many([video(IDS[4]), video(IDS[3], tags=("x",))])

    def test_intra_batch_identical_duplicate_collapsed(self):
        with VideoStore() as store:
            store.add_many([video(IDS[5]), video(IDS[5])])
            assert len(store) == 1

    def test_intra_batch_divergent_duplicate_names_the_id(self):
        with VideoStore() as store:
            with pytest.raises(DatasetError, match=IDS[5]):
                store.add_many([video(IDS[5]), video(IDS[5], views=7)])
            assert len(store) == 0

    def test_iteration_in_insertion_order(self):
        with VideoStore() as store:
            store.add_many([video(IDS[2]), video(IDS[0]), video(IDS[1])])
            assert [v.video_id for v in store] == [IDS[2], IDS[0], IDS[1]]

    def test_none_popularity_roundtrip(self):
        with VideoStore() as store:
            store.add(video(IDS[0], pop=None))
            assert store.get(IDS[0]).popularity is None


class TestQueries:
    @pytest.fixture()
    def populated(self):
        store = VideoStore()
        store.add_many(
            [
                video(IDS[0], views=10, tags=("a", "b")),
                video(IDS[1], views=30, tags=("b",)),
                video(IDS[2], views=20, tags=("b", "c")),
            ]
        )
        return store

    def test_videos_with_tag(self, populated):
        ids = [v.video_id for v in populated.videos_with_tag("b")]
        assert ids == [IDS[0], IDS[1], IDS[2]]
        assert [v.video_id for v in populated.videos_with_tag("a")] == [IDS[0]]
        assert populated.videos_with_tag("zzz") == []

    def test_tag_frequencies(self, populated):
        frequencies = dict(populated.tag_frequencies())
        assert frequencies == {"a": 1, "b": 3, "c": 1}

    def test_tag_frequencies_min_count(self, populated):
        assert populated.tag_frequencies(min_count=2) == [("b", 3)]

    def test_most_viewed(self, populated):
        ranked = populated.most_viewed(2)
        assert [v.video_id for v in ranked] == [IDS[1], IDS[2]]

    def test_aggregates(self, populated):
        assert populated.unique_tag_count() == 3
        assert populated.total_views() == 60


class TestConversionsAndPersistence:
    def test_dataset_roundtrip(self, tiny_dataset):
        store = VideoStore.from_dataset(tiny_dataset)
        assert len(store) == len(tiny_dataset)
        rebuilt = store.to_dataset()
        for original in tiny_dataset:
            assert rebuilt.get(original.video_id) == original

    def test_store_survives_reopen(self, tmp_path):
        path = tmp_path / "crawl.db"
        with VideoStore(path) as store:
            store.add(video(IDS[0]))
        with VideoStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.get(IDS[0]).video_id == IDS[0]

    def test_tag_index_consistent_with_dataset(self, tiny_dataset):
        store = VideoStore.from_dataset(tiny_dataset)
        expected = tiny_dataset.tag_frequencies()
        for tag, count in store.tag_frequencies():
            assert expected[tag] == count

    def test_most_viewed_matches_dataset(self, tiny_dataset):
        store = VideoStore.from_dataset(tiny_dataset)
        assert (
            store.most_viewed(1)[0].video_id
            == tiny_dataset.most_viewed_video().video_id
        )


class TestDurability:
    def test_on_disk_store_uses_wal(self, tmp_path):
        with VideoStore(tmp_path / "crawl.db") as store:
            assert store.journal_mode() == "wal"

    def test_memory_store_keeps_default_journal(self):
        with VideoStore() as store:
            assert store.journal_mode() != "wal"  # WAL needs a real file

    def test_integrity_check_passes_on_healthy_store(self, tmp_path):
        path = tmp_path / "crawl.db"
        with VideoStore(path) as store:
            store.add_many([video(i) for i in make_ids(300)])
            store.integrity_check()

    def test_integrity_check_detects_zeroed_page(self, tmp_path):
        path = tmp_path / "crawl.db"
        with VideoStore(path) as store:
            store.add_many([video(i) for i in make_ids(300)])
        # Zero out a 4096-byte page in the middle of the database file.
        blob = bytearray(path.read_bytes())
        page_size = 4096
        middle = (len(blob) // page_size) // 2 * page_size
        blob[middle : middle + page_size] = b"\0" * page_size
        path.write_bytes(bytes(blob))
        with VideoStore(path) as reopened:
            with pytest.raises(DatasetIOError):
                reopened.integrity_check()


def make_ids(count):
    return [f"BBBBBBBB{i:03d}" for i in range(count)]


def _writer_process(path, ids):
    # Module-level so it can be forked/spawned as a multiprocessing
    # target; each process re-adds an overlapping id range.
    with VideoStore(path) as store:
        for vid in ids:
            store.add(video(vid))


class TestConcurrentWriters:
    def test_overlapping_cross_process_writes_converge(self, tmp_path):
        """N processes upserting overlapping id ranges never corrupt the
        store and converge to the union — exactly the distributed-crawl
        write pattern (idempotent upserts + busy retry under WAL)."""
        import multiprocessing

        path = tmp_path / "crawl.db"
        ids = make_ids(40)
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_writer_process, args=(path, ids[start::2]))
            for start in (0, 1, 0, 1)  # two pairs write identical ranges
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        with VideoStore(path) as store:
            assert len(store) == len(ids)
            store.integrity_check()
            assert sorted(v.video_id for v in store) == sorted(ids)

    def test_busy_writer_retries_until_lock_clears(self, tmp_path):
        """A long-held write transaction in another connection produces
        SQLITE_BUSY; add() must wait it out instead of failing."""
        import sqlite3
        import threading

        path = tmp_path / "crawl.db"
        with VideoStore(path) as store:
            store.add(video(IDS[0]))

            # check_same_thread=False: the release Timer commits from
            # another thread.
            blocker = sqlite3.connect(
                path, timeout=0.05, check_same_thread=False
            )
            blocker.execute("PRAGMA journal_mode=WAL")
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute(
                "UPDATE videos SET views = views + 1 WHERE id = ?", (IDS[0],)
            )
            release = threading.Timer(0.3, blocker.commit)
            release.start()
            try:
                store.add(video(IDS[1]))  # must outlive the held lock
            finally:
                release.join()
                blocker.close()
            assert IDS[1] in store
