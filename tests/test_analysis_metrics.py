"""Unit and property tests for distribution metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    as_distribution,
    gini,
    herfindahl,
    jensen_shannon,
    normalized_entropy,
    top_k_share,
    total_variation,
)
from repro.errors import AnalysisError

weight_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=62,
).filter(lambda values: sum(values) > 0)


class TestAsDistribution:
    def test_normalizes(self):
        assert as_distribution([1, 3]).tolist() == [0.25, 0.75]

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            as_distribution([1, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(AnalysisError):
            as_distribution([0, 0])

    def test_rejects_nan(self):
        with pytest.raises(AnalysisError):
            as_distribution([1, float("nan")])

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            as_distribution([])

    def test_rejects_matrix(self):
        with pytest.raises(AnalysisError):
            as_distribution(np.ones((2, 2)))


class TestEntropy:
    def test_uniform_is_one(self):
        assert normalized_entropy([1, 1, 1, 1]) == pytest.approx(1.0)

    def test_point_mass_is_zero(self):
        assert normalized_entropy([0, 1, 0]) == pytest.approx(0.0)

    def test_single_bin_is_zero(self):
        assert normalized_entropy([5.0]) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(weights=weight_vectors)
    def test_bounds(self, weights):
        value = normalized_entropy(weights)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestGini:
    def test_equal_shares_zero(self):
        assert gini([2, 2, 2, 2]) == pytest.approx(0.0)

    def test_point_mass_near_one(self):
        value = gini([0, 0, 0, 10])
        assert value == pytest.approx(0.75)  # (n-1)/n for point mass

    @settings(max_examples=100, deadline=None)
    @given(weights=weight_vectors)
    def test_bounds(self, weights):
        value = gini(weights)
        assert -1e-12 <= value < 1.0

    def test_more_concentrated_is_larger(self):
        assert gini([1, 1, 1, 7]) > gini([2, 2, 3, 3])


class TestHerfindahl:
    def test_point_mass_is_one(self):
        assert herfindahl([0, 5, 0]) == pytest.approx(1.0)

    def test_uniform_is_reciprocal_n(self):
        assert herfindahl([1, 1, 1, 1]) == pytest.approx(0.25)

    @settings(max_examples=100, deadline=None)
    @given(weights=weight_vectors)
    def test_bounds(self, weights):
        value = herfindahl(weights)
        n = len(weights)
        assert 1.0 / n - 1e-12 <= value <= 1.0 + 1e-12


class TestTopKShare:
    def test_top1(self):
        assert top_k_share([1, 3, 6], 1) == pytest.approx(0.6)

    def test_top_k_saturates_at_n(self):
        assert top_k_share([1, 2], 10) == pytest.approx(1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(AnalysisError):
            top_k_share([1, 2], 0)

    @settings(max_examples=50, deadline=None)
    @given(weights=weight_vectors, k=st.integers(min_value=1, max_value=10))
    def test_monotone_in_k(self, weights, k):
        assert top_k_share(weights, k) <= top_k_share(weights, k + 1) + 1e-12


class TestDivergences:
    def test_tv_identical_zero(self):
        assert total_variation([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)

    def test_tv_disjoint_one(self):
        assert total_variation([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_jsd_identical_zero(self):
        assert jensen_shannon([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_jsd_disjoint_is_ln2(self):
        assert jensen_shannon([1, 0], [0, 1]) == pytest.approx(math.log(2))

    def test_size_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            jensen_shannon([1, 2], [1, 2, 3])
        with pytest.raises(AnalysisError):
            total_variation([1, 2], [1, 2, 3])

    @settings(max_examples=100, deadline=None)
    @given(weights=weight_vectors)
    def test_jsd_symmetric_and_bounded(self, weights):
        rng = np.random.default_rng(0)
        other = rng.dirichlet(np.ones(len(weights)))
        forward = jensen_shannon(weights, other)
        backward = jensen_shannon(other, weights)
        assert forward == pytest.approx(backward, abs=1e-9)
        assert 0.0 <= forward <= math.log(2) + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(weights=weight_vectors)
    def test_tv_bounds(self, weights):
        uniform = np.ones(len(weights))
        value = total_variation(weights, uniform)
        assert 0.0 <= value <= 1.0
