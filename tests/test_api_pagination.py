"""Unit and property tests for pagination tokens."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.pagination import (
    Page,
    decode_page_token,
    encode_page_token,
    paginate,
)
from repro.errors import BadRequestError


class TestTokens:
    def test_roundtrip(self):
        token = encode_page_token("query", 40)
        assert decode_page_token("query", token) == 40

    def test_token_bound_to_query(self):
        token = encode_page_token("query-a", 40)
        with pytest.raises(BadRequestError):
            decode_page_token("query-b", token)

    def test_malformed_token_rejected(self):
        for bad in ("", "CT", "CT-zzzz", "CT-00000000-notanum", "XX-1-2"):
            with pytest.raises(BadRequestError):
                decode_page_token("query", bad)

    def test_negative_offset_rejected(self):
        with pytest.raises(BadRequestError):
            encode_page_token("query", -1)

    @settings(max_examples=50, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10**9), key=st.text(max_size=30))
    def test_roundtrip_property(self, offset, key):
        assert decode_page_token(key, encode_page_token(key, offset)) == offset


class TestPaginate:
    ITEMS = [f"item{i}" for i in range(25)]

    def test_first_page(self):
        page = paginate(self.ITEMS, "q", None, 10)
        assert list(page.items) == self.ITEMS[:10]
        assert page.total_results == 25
        assert page.next_page_token is not None

    def test_walk_all_pages(self):
        collected = []
        token = None
        pages = 0
        while True:
            page = paginate(self.ITEMS, "q", token, 10)
            collected.extend(page.items)
            pages += 1
            token = page.next_page_token
            if token is None:
                break
        assert collected == self.ITEMS
        assert pages == 3

    def test_exact_multiple_has_no_dangling_page(self):
        page1 = paginate(self.ITEMS[:20], "q", None, 10)
        page2 = paginate(self.ITEMS[:20], "q", page1.next_page_token, 10)
        assert page2.next_page_token is None

    def test_empty_items(self):
        page = paginate([], "q", None, 10)
        assert page.items == ()
        assert page.next_page_token is None
        assert page.total_results == 0

    def test_offset_beyond_end(self):
        token = encode_page_token("q", 1000)
        page = paginate(self.ITEMS, "q", token, 10)
        assert page.items == ()
        assert page.next_page_token is None

    def test_invalid_max_results_rejected(self):
        with pytest.raises(BadRequestError):
            paginate(self.ITEMS, "q", None, 0)
