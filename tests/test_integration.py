"""Cross-module integration tests: the full paper pipeline end to end."""

import numpy as np
import pytest

from repro.analysis.conjecture import evaluate_conjecture
from repro.analysis.metrics import jensen_shannon, top_k_share
from repro.analysis.tagstats import TagGeographyReport
from repro.api.faults import FaultInjector
from repro.api.service import YoutubeService
from repro.crawler.snowball import SnowballCrawler
from repro.datamodel.dataset import Dataset
from repro.datamodel.io import read_videos_jsonl, write_videos_jsonl
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.validation import validate_against_universe
from repro.reconstruct.views import ViewReconstructor


class TestPaperStoryEndToEnd:
    """Each test asserts one of the paper's qualitative claims on the
    deterministic tiny pipeline."""

    def test_fig1_saturation_includes_small_country(self, tiny_pipeline):
        # Fig. 1 discussion: the per-video normalization K(v) makes small
        # countries hit the 61 cap alongside giants. Over the corpus,
        # saturated maps must not be exclusive to the top-3 markets.
        traffic = tiny_pipeline.universe.traffic
        big_three = set(
            sorted(traffic.as_dict(), key=traffic.as_dict().get, reverse=True)[:3]
        )
        saturated_small = 0
        for video in tiny_pipeline.dataset:
            saturated = {
                code
                for code, value in video.popularity
                if value == 61
            }
            if saturated - big_three:
                saturated_small += 1
        assert saturated_small > len(tiny_pipeline.dataset) * 0.3

    def test_fig2_top_tag_follows_prior(self, tiny_pipeline):
        # The most-viewed tags are global; their distribution hugs the
        # traffic prior (paper Fig. 2).
        table = tiny_pipeline.tag_table
        prior = tiny_pipeline.universe.traffic.as_vector()
        top_tag = table.top_tags_by_views(1)[0][0]
        assert jensen_shannon(table.shares_for(top_tag), prior) < 0.1

    def test_fig3_local_tags_concentrate(self, tiny_pipeline):
        # Some sufficiently-viewed tag concentrates most of its views in
        # one country (paper Fig. 3: favela → Brazil).
        report = TagGeographyReport(
            tiny_pipeline.tag_table,
            tiny_pipeline.universe.traffic,
            min_videos=3,
        )
        most_local = report.most_local(5)
        assert most_local
        assert max(stat.top1_share for stat in most_local) > 0.3

    def test_conjecture_pipeline(self, tiny_pipeline):
        result = evaluate_conjecture(
            tiny_pipeline.dataset,
            tiny_pipeline.reconstructor,
            universe=tiny_pipeline.universe,
        )
        assert result.conjecture_holds()


class TestFaultyCrawlStillAnalyzable:
    def test_full_pipeline_under_faults(self, tiny_universe, tmp_path):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.1, seed=42)
        )
        crawl = SnowballCrawler(service, max_videos=200, max_retries=4).run()
        assert crawl.stats.transient_errors > 0

        # Persist → reload → filter → reconstruct → aggregate.
        path = tmp_path / "crawl.jsonl"
        write_videos_jsonl(crawl.dataset, path)
        reloaded = Dataset(read_videos_jsonl(path))
        filtered, report = reloaded.apply_paper_filter()
        assert report.retained == len(filtered) > 0

        reconstructor = ViewReconstructor(tiny_universe.traffic)
        table = TagViewsTable(filtered, reconstructor)
        assert len(table) > 0

        validation = validate_against_universe(
            tiny_universe, filtered, reconstructor
        )
        assert validation.count == len(filtered)
        assert validation.mean_tv() < 0.25


class TestCrawlSamplingBias:
    def test_snowball_overrepresents_popular_videos(self, tiny_pipeline):
        # Snowball sampling is popularity-biased: the crawled set's mean
        # views exceed the universe's mean views when the crawl is partial.
        universe = tiny_pipeline.universe
        service = YoutubeService(universe)
        partial = SnowballCrawler(service, max_videos=80).run().dataset
        crawled_mean = np.mean([video.views for video in partial])
        universe_mean = np.mean(
            [video.views for video in universe.videos()]
        )
        assert crawled_mean > universe_mean
