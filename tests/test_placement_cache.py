"""Unit tests for edge caches."""

import pytest

from repro.errors import CacheError
from repro.placement.cache import LFUCache, LRUCache, StaticCache

IDS = [f"AAAAAAAAA{i:02d}" for i in range(30)]


class TestLRU:
    def test_hit_and_miss_accounting(self):
        cache = LRUCache(2)
        assert not cache.request(IDS[0])
        cache.admit(IDS[0])
        assert cache.request(IDS[0])
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.admit(IDS[0])
        cache.admit(IDS[1])
        cache.request(IDS[0])  # refresh 0
        cache.admit(IDS[2])    # evicts 1
        assert IDS[0] in cache
        assert IDS[1] not in cache
        assert IDS[2] in cache
        assert cache.stats.evictions == 1

    def test_capacity_respected(self):
        cache = LRUCache(3)
        for video_id in IDS[:10]:
            cache.admit(video_id)
        assert len(cache) == 3

    def test_zero_capacity_never_stores(self):
        cache = LRUCache(0)
        cache.admit(IDS[0])
        cache.pin(IDS[1])
        assert len(cache) == 0

    def test_duplicate_admit_is_noop(self):
        cache = LRUCache(5)
        cache.admit(IDS[0])
        cache.admit(IDS[0])
        assert cache.stats.insertions == 1

    def test_pin_counts_separately(self):
        cache = LRUCache(5)
        cache.pin(IDS[0])
        cache.admit(IDS[1])
        assert cache.stats.pins == 1
        assert cache.stats.insertions == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            LRUCache(-1)


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.admit(IDS[0])
        cache.admit(IDS[1])
        cache.request(IDS[0])
        cache.request(IDS[0])
        cache.request(IDS[1])
        cache.admit(IDS[2])  # evicts 1 (freq 2) vs 0 (freq 3)? no: 1 has freq 2, 0 has 3
        assert IDS[0] in cache
        assert IDS[1] not in cache

    def test_tie_broken_by_recency(self):
        cache = LFUCache(2)
        cache.admit(IDS[0])
        cache.admit(IDS[1])
        # Equal frequency; the min() scan finds the oldest insertion first.
        cache.admit(IDS[2])
        assert IDS[1] in cache
        assert IDS[0] not in cache

    def test_capacity_respected(self):
        cache = LFUCache(4)
        for video_id in IDS[:12]:
            cache.admit(video_id)
        assert len(cache) == 4


class TestStatic:
    def test_requests_never_insert(self):
        cache = StaticCache(5)
        cache.request(IDS[0])
        cache.admit(IDS[0])  # no-op by design
        assert IDS[0] not in cache
        assert cache.stats.misses == 1

    def test_pins_stick(self):
        cache = StaticCache(5)
        cache.pin(IDS[0])
        assert cache.request(IDS[0])
        assert cache.stats.evictions == 0

    def test_pins_beyond_capacity_skipped(self):
        cache = StaticCache(2)
        for video_id in IDS[:5]:
            cache.pin(video_id)
        assert len(cache) == 2

    def test_hit_rate_zero_without_requests(self):
        assert StaticCache(2).stats.hit_rate == 0.0
