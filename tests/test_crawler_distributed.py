"""Tests for the distributed multi-process crawl.

The load-bearing property (ISSUE 7's acceptance): a multi-worker crawl
through a faulty network with workers killed or hung mid-lease converges
to the **exact** video set — ids, tags, popularity, every field — of a
fault-free single-process crawl. At-least-once visiting + idempotent
store upserts + journal replay on reclaim = exactly-once collection.
"""

import itertools

import pytest

from repro.api.chaos import ChaosProxy
from repro.api.service import YoutubeService
from repro.api.transport import YoutubeAPIServer
from repro.clock import ManualClock
from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.distributed import (
    DistributedCrawlSupervisor,
    merge_worker_checkpoints,
)
from repro.crawler.snowball import SnowballCrawler
from repro.crawler.stats import CrawlStats
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import CheckpointError, ConfigError
from repro.synth.universe import UniverseConfig, build_universe

#: Small enough for multi-run tests, big enough for depth > 1 BFS.
UNIVERSE = UniverseConfig(n_videos=120, n_tags=90, seed=2011)


@pytest.fixture(scope="module")
def universe():
    return build_universe(UNIVERSE)


@pytest.fixture(scope="module")
def baseline(universe):
    """Fault-free single-process exhaustive crawl — the ground truth."""
    crawl = SnowballCrawler(
        YoutubeService(universe), max_videos=1_000
    ).run()
    return {video.video_id: video for video in crawl.dataset}


@pytest.fixture()
def server(universe):
    with YoutubeAPIServer(YoutubeService(universe)) as running:
        yield running


def records(result):
    return {video.video_id: video for video in result.dataset}


def supervisor_paths(tmp_path):
    return str(tmp_path / "crawl.db"), str(tmp_path / "journals")


class TestCleanRun:
    def test_matches_single_process_exactly(self, server, baseline, tmp_path):
        store, workdir = supervisor_paths(tmp_path)
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=1_000,
        ) as supervisor:
            result = supervisor.run()
        assert records(result) == baseline
        assert result.stats.workers_spawned == 2
        assert result.stats.workers_restarted == 0
        assert result.stats.leases_revoked == 0
        assert result.stats.fetched == len(result.dataset)

    def test_memory_store_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="on-disk"):
            DistributedCrawlSupervisor(
                "127.0.0.1",
                1,
                store_path=":memory:",
                workdir=str(tmp_path / "journals"),
            )


class TestKillTolerance:
    def test_exactly_once_under_chaos_and_kills(
        self, server, baseline, tmp_path
    ):
        """The acceptance property: 4 workers through a 12%-fault proxy,
        three of them killed mid-lease, still collect the identical
        video set (every field) as the fault-free single-process run."""
        store, workdir = supervisor_paths(tmp_path)
        with ChaosProxy(
            server.host,
            server.port,
            fault_rate=0.12,
            seed=7,
            burst_length=3,
            latency_seconds=0.0,
        ) as proxy:
            with DistributedCrawlSupervisor(
                proxy.host,
                proxy.port,
                store_path=store,
                workdir=workdir,
                workers=4,
                max_videos=1_000,
                kill_plan={0: 4, 1: 9, 2: 14},
            ) as supervisor:
                result = supervisor.run()
        assert records(result) == baseline
        assert result.stats.workers_restarted >= 3
        assert result.stats.leases_revoked >= 3
        assert result.stats.shards_requeued >= 1
        assert result.stats.journal_replays >= 3
        assert result.stats.fetched == len(result.dataset)

    def test_hung_worker_lease_revoked_and_work_requeued(
        self, server, baseline, tmp_path
    ):
        """A worker that goes silent (no heartbeats) but stays alive is
        detected purely via lease expiry on the injected clock."""
        store, workdir = supervisor_paths(tmp_path)
        clock = ManualClock()
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=1_000,
            hang_plan={0: 3},
            lease_timeout=5.0,
            clock=clock,
            tick_hook=lambda: clock.advance(0.25),
        ) as supervisor:
            result = supervisor.run()
        assert records(result) == baseline
        assert result.stats.leases_revoked >= 1
        assert result.stats.workers_restarted >= 1


class TestStops:
    def test_budget_stop(self, server, tmp_path):
        store, workdir = supervisor_paths(tmp_path)
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=30,
        ) as supervisor:
            result = supervisor.run()
        assert result.stats.stopped_by_budget
        assert len(result.dataset) >= 30

    def test_quota_backpressure_stops_granting(self, server, tmp_path):
        # Seeding costs 25 countries x 3 units = 75; each 8-entry shard
        # is estimated at 8 x (1 + 2x3) = 56. The supervisor must stop
        # granting once a whole shard may not fit, instead of letting
        # workers hit the quota wall mid-flight.
        store, workdir = supervisor_paths(tmp_path)
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=1_000,
            quota_limit=200,
        ) as supervisor:
            result = supervisor.run()
        assert result.stats.stopped_by_quota
        assert len(result.dataset) < 105  # did not finish the crawl


class TestResume:
    def test_second_run_completes_from_supervisor_journal(
        self, server, baseline, tmp_path
    ):
        """A budget-stopped run leaves a durable snapshot; a second
        supervisor over the same workdir + store finishes the crawl and
        converges to the same set as an uninterrupted run."""
        store, workdir = supervisor_paths(tmp_path)
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=40,
        ) as first:
            partial = first.run()
        assert partial.stats.stopped_by_budget
        assert len(partial.dataset) < len(baseline)

        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=1_000,
        ) as second:
            result = second.run()
        assert records(result) == baseline
        assert result.stats.journal_replays >= 1

    def test_resume_with_kills_still_exact(self, server, baseline, tmp_path):
        """Kills in the first run + resume in a second run compose."""
        store, workdir = supervisor_paths(tmp_path)
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=60,
            kill_plan={0: 5},
        ) as first:
            first.run()
        with DistributedCrawlSupervisor(
            server.host,
            server.port,
            store_path=store,
            workdir=workdir,
            workers=2,
            max_videos=1_000,
        ) as second:
            result = second.run()
        assert records(result) == baseline


def video(video_id, views=100, tags=("music",), related=()):
    return Video(
        video_id=video_id,
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector({"US": 61}),
        related_ids=tuple(related),
    )


def checkpoint(pending=(), admitted=(), videos=(), fetched=0, seeded=True):
    stats = CrawlStats()
    stats.fetched = fetched
    return CrawlCheckpoint(
        pending=list(pending),
        admitted=list(admitted),
        videos=list(videos),
        stats=stats,
        seeded=seeded,
    )


class TestMergeWorkerCheckpoints:
    def test_merge_is_order_independent(self):
        checkpoints = [
            checkpoint(
                pending=[("AAAAAAAAAAc", 2)],
                admitted=["AAAAAAAAAAa", "AAAAAAAAAAc"],
                videos=[video("AAAAAAAAAAa")],
                fetched=1,
            ),
            checkpoint(
                pending=[("AAAAAAAAAAc", 1), ("AAAAAAAAAAd", 3)],
                admitted=["AAAAAAAAAAb", "AAAAAAAAAAc", "AAAAAAAAAAd"],
                videos=[video("AAAAAAAAAAb")],
                fetched=1,
            ),
            checkpoint(pending=[], admitted=["AAAAAAAAAAa"], videos=[], fetched=0),
        ]
        merged = [
            merge_worker_checkpoints(list(order)).to_dict()
            for order in itertools.permutations(checkpoints)
        ]
        assert all(result == merged[0] for result in merged[1:])

    def test_pending_deduplicated_at_minimum_depth(self):
        merged = merge_worker_checkpoints(
            [
                checkpoint(pending=[("AAAAAAAAAAx", 4)], admitted=["AAAAAAAAAAx"]),
                checkpoint(pending=[("AAAAAAAAAAx", 2)], admitted=["AAAAAAAAAAx"]),
            ]
        )
        assert merged.pending == [("AAAAAAAAAAx", 2)]

    def test_entry_recorded_by_any_worker_leaves_pending(self):
        merged = merge_worker_checkpoints(
            [
                checkpoint(pending=[("AAAAAAAAAAa", 1)], admitted=["AAAAAAAAAAa"]),
                checkpoint(admitted=["AAAAAAAAAAa"], videos=[video("AAAAAAAAAAa")], fetched=1),
            ]
        )
        assert merged.pending == []
        assert [v.video_id for v in merged.videos] == ["AAAAAAAAAAa"]

    def test_divergent_video_across_journals_raises(self):
        with pytest.raises(CheckpointError, match="AAAAAAAAAAa"):
            merge_worker_checkpoints(
                [
                    checkpoint(videos=[video("AAAAAAAAAAa", views=1)], admitted=["AAAAAAAAAAa"]),
                    checkpoint(videos=[video("AAAAAAAAAAa", views=2)], admitted=["AAAAAAAAAAa"]),
                ]
            )

    def test_stats_accumulate_and_seeded_ors(self):
        merged = merge_worker_checkpoints(
            [
                checkpoint(fetched=3, seeded=False),
                checkpoint(fetched=4, seeded=True),
            ]
        )
        assert merged.stats.fetched == 7
        assert merged.seeded is True


class TestWorkerJournalInterleaving:
    """Worker journals written concurrently must merge losslessly.

    Each worker owns its journal file, so there is no write interleaving
    *within* a journal — the hazard is at merge time (supervisor replay
    after a crash) and at compaction time (a snapshot taken mid-lease
    must not drop records the supervisor has not acked yet).
    """

    IDS = [f"CCCCCCCC{i:03d}" for i in range(6)]

    def _worker_journal(self, directory, lease, visited):
        from repro.durability.journal import CheckpointJournal

        journal = CheckpointJournal(directory)
        stats = CrawlStats()
        journal.append_batch(
            popped=0, admitted=list(lease), videos=[], stats=stats, seeded=True
        )
        for video_id in visited:
            stats.record_fetch(0)
            journal.append_batch(
                popped=1,  # per-batch delta: one frontier pop per visit
                admitted=[],
                videos=[video(video_id)],
                stats=stats,
                seeded=True,
            )
        journal.close()
        return directory

    def test_two_worker_journals_merge_losslessly_in_any_order(
        self, tmp_path
    ):
        from repro.durability.journal import CheckpointJournal

        lease_a = [(self.IDS[0], 0), (self.IDS[1], 0), (self.IDS[2], 1)]
        lease_b = [(self.IDS[3], 0), (self.IDS[4], 1), (self.IDS[5], 1)]
        # Worker A died mid-lease (visited 1 of 3); worker B finished 2.
        self._worker_journal(tmp_path / "w0", lease_a, [self.IDS[0]])
        self._worker_journal(
            tmp_path / "w1", lease_b, [self.IDS[3], self.IDS[4]]
        )
        replayed = [
            CheckpointJournal(tmp_path / "w0").load(),
            CheckpointJournal(tmp_path / "w1").load(),
        ]
        merged = merge_worker_checkpoints(replayed)
        flipped = merge_worker_checkpoints(list(reversed(replayed)))
        assert merged.to_dict() == flipped.to_dict()
        # Nothing lost: every leased entry is either recorded or pending.
        recorded = {v.video_id for v in merged.videos}
        pending = {video_id for video_id, _ in merged.pending}
        assert recorded == {self.IDS[0], self.IDS[3], self.IDS[4]}
        assert pending == {self.IDS[1], self.IDS[2], self.IDS[5]}
        assert merged.stats.fetched == 3

    def test_compaction_during_lease_keeps_unacked_records(self, tmp_path):
        """A compaction firing mid-lease folds the WAL into a snapshot;
        entries the supervisor has not acked must survive it."""
        from collections import deque

        from repro.durability.journal import CheckpointJournal

        lease = [(vid, 0) for vid in self.IDS[:4]]
        journal = CheckpointJournal(tmp_path, compact_every=2)
        stats = CrawlStats()
        pending = deque(lease)
        recorded = []

        def factory():
            return CrawlCheckpoint(
                pending=list(pending),
                admitted=[video_id for video_id, _ in lease],
                videos=list(recorded),
                stats=CrawlStats.from_dict(stats.to_dict()),
                seeded=True,
            )

        journal.append_batch(
            popped=0, admitted=lease, videos=[], stats=stats, seeded=True
        )
        for video_id, _ in lease[:2]:  # visit half the lease
            stats.record_fetch(0)
            recorded.append(video(video_id))
            pending.popleft()
            journal.append_batch(
                popped=1,
                admitted=[],
                videos=[recorded[-1]],
                stats=stats,
                seeded=True,
            )
            journal.maybe_compact(factory)
        assert journal.snapshots_written >= 1  # compaction really fired
        journal.close()

        # Worker dies here; the supervisor replays the journal.
        replayed = CheckpointJournal(tmp_path).load()
        assert {v.video_id for v in replayed.videos} == set(self.IDS[:2])
        assert [video_id for video_id, _ in replayed.pending] == self.IDS[2:4]
        assert replayed.stats.fetched == 2
