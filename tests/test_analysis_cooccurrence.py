"""Tests for tag co-occurrence analysis."""

import pytest

from repro.analysis.cooccurrence import CooccurrenceGraph, geographic_coherence
from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import AnalysisError

IDS = [f"AAAAAAAAA{i:02d}" for i in range(12)]


def video(video_id, tags):
    return Video(
        video_id=video_id,
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=100,
        tags=tags,
        popularity=PopularityVector({"US": 61}),
    )


@pytest.fixture()
def toy_graph():
    dataset = Dataset(
        [
            video(IDS[0], ("a", "b", "c")),
            video(IDS[1], ("a", "b")),
            video(IDS[2], ("a", "b")),
            video(IDS[3], ("c", "d")),
            video(IDS[4], ("c", "d")),
            video(IDS[5], ("c", "d")),
            video(IDS[6], ("rare1", "rare2")),  # below min count
        ]
    )
    return CooccurrenceGraph(dataset, min_tag_count=2)


class TestGraphConstruction:
    def test_rare_tags_excluded(self, toy_graph):
        assert "rare1" not in toy_graph
        assert "a" in toy_graph

    def test_edge_weights_count_shared_videos(self, toy_graph):
        assert toy_graph.graph["a"]["b"]["weight"] == 3
        assert toy_graph.graph["c"]["d"]["weight"] == 3
        assert toy_graph.graph["a"]["c"]["weight"] == 1

    def test_most_associated_jaccard(self, toy_graph):
        ranked = toy_graph.most_associated("a", 5)
        # b co-occurs with a on all 3 of a's videos: Jaccard 3/(3+3-3)=1.
        assert ranked[0] == ("b", pytest.approx(1.0))
        # c shares 1 of a's videos: 1/(3+4-1).
        names = dict(ranked)
        assert names["c"] == pytest.approx(1 / 6)

    def test_most_associated_unknown_tag(self, toy_graph):
        with pytest.raises(AnalysisError):
            toy_graph.most_associated("zzz")

    def test_communities_split_clusters(self, toy_graph):
        communities = toy_graph.communities()
        as_sets = [frozenset(c) for c in communities]
        assert frozenset({"a", "b"}) in {c & {"a", "b"} for c in as_sets}
        # a-b and c-d should not merge into one community.
        for community in communities:
            assert not ({"a", "b"} <= community and {"c", "d"} <= community)

    def test_invalid_min_count_rejected(self):
        with pytest.raises(AnalysisError):
            CooccurrenceGraph(Dataset(), min_tag_count=0)


class TestOnPipelineData:
    def test_graph_builds_on_real_corpus(self, tiny_pipeline):
        graph = CooccurrenceGraph(tiny_pipeline.dataset, min_tag_count=3)
        assert len(graph) > 20
        assert graph.edge_count() > len(graph)

    def test_head_tags_strongly_associated(self, tiny_pipeline):
        graph = CooccurrenceGraph(tiny_pipeline.dataset, min_tag_count=3)
        if "music" in graph and "pop" in graph:
            associated = dict(graph.most_associated("music", 10))
            assert "pop" in associated

    def test_communities_geographically_coherent(self, tiny_pipeline):
        graph = CooccurrenceGraph(tiny_pipeline.dataset, min_tag_count=3)
        communities = graph.communities(max_communities=30)
        coherence = geographic_coherence(
            communities, tiny_pipeline.tag_table, max_pairs=300
        )
        # The paper's semantics→geography premise: within-community tag
        # geographies are closer than across-community ones. The tiny
        # corpus only supports a directional check; benchmark A3 asserts
        # a strong ratio at medium scale.
        assert coherence["within"] < coherence["across"]

    def test_coherence_needs_communities(self, tiny_pipeline):
        with pytest.raises(AnalysisError):
            geographic_coherence([{"music"}], tiny_pipeline.tag_table)
