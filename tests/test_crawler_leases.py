"""Tests for lease-based frontier-shard ownership.

All timing runs on a ManualClock — no test waits out a real deadline.
"""

import pytest

from repro.clock import ManualClock
from repro.crawler.leases import Lease, LeaseError, LeaseManager
from repro.errors import ConfigError

ENTRIES = (("vid-a", 0), ("vid-b", 1), ("vid-c", 1))


def make_manager(timeout=30.0):
    clock = ManualClock()
    return LeaseManager(timeout, clock=clock), clock


class TestGrant:
    def test_grant_sets_deadline_from_clock(self):
        manager, clock = make_manager(timeout=30.0)
        clock.advance(100.0)
        lease = manager.grant(0, ENTRIES)
        assert lease.granted_at == pytest.approx(100.0)
        assert lease.deadline == pytest.approx(130.0)
        assert lease.entries == ENTRIES
        assert manager.outstanding == 1
        assert manager.granted == 1

    def test_one_lease_per_worker(self):
        manager, _ = make_manager()
        manager.grant(0, ENTRIES)
        with pytest.raises(LeaseError, match="already holds"):
            manager.grant(0, (("vid-z", 2),))
        # A different worker is fine.
        manager.grant(1, (("vid-z", 2),))
        assert manager.outstanding == 2

    def test_empty_lease_rejected(self):
        manager, _ = make_manager()
        with pytest.raises(LeaseError, match="empty"):
            manager.grant(0, ())

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError):
            LeaseManager(0.0)
        with pytest.raises(ConfigError):
            LeaseManager(-1.0)

    def test_lease_ids_are_unique(self):
        manager, _ = make_manager()
        first = manager.grant(0, ENTRIES)
        manager.complete(first.lease_id)
        second = manager.grant(0, ENTRIES)
        assert second.lease_id != first.lease_id


class TestExpiry:
    def test_lease_expires_after_timeout_of_silence(self):
        manager, clock = make_manager(timeout=30.0)
        lease = manager.grant(0, ENTRIES)
        clock.advance(30.0)
        assert manager.expired() == []  # deadline is inclusive
        clock.advance(0.1)
        assert [stale.lease_id for stale in manager.expired()] == [
            lease.lease_id
        ]

    def test_renew_pushes_deadline_out(self):
        manager, clock = make_manager(timeout=30.0)
        lease = manager.grant(0, ENTRIES)
        clock.advance(25.0)
        assert manager.renew(lease.lease_id)
        clock.advance(25.0)  # 50s since grant, 25s since heartbeat
        assert manager.expired() == []
        assert manager.get(lease.lease_id).renewals == 1

    def test_renew_unknown_lease_is_ignorable(self):
        # A late heartbeat from a worker whose lease was already
        # revoked must not blow up the control loop.
        manager, _ = make_manager()
        assert manager.renew(999) is False

    def test_expired_sorted_oldest_deadline_first(self):
        manager, clock = make_manager(timeout=10.0)
        first = manager.grant(0, (("vid-a", 0),))
        clock.advance(5.0)
        second = manager.grant(1, (("vid-b", 0),))
        clock.advance(20.0)
        assert [stale.lease_id for stale in manager.expired()] == [
            first.lease_id,
            second.lease_id,
        ]


class TestAckCompleteRevoke:
    def test_ack_narrows_unacked(self):
        manager, _ = make_manager()
        lease = manager.grant(0, ENTRIES)
        assert manager.ack(lease.lease_id, "vid-b")
        assert lease.unacked() == [("vid-a", 0), ("vid-c", 1)]
        assert manager.outstanding_entries == 2

    def test_ack_is_idempotent(self):
        manager, _ = make_manager()
        lease = manager.grant(0, ENTRIES)
        manager.ack(lease.lease_id, "vid-a")
        manager.ack(lease.lease_id, "vid-a")
        assert lease.acked == ["vid-a"]

    def test_ack_unknown_lease_is_ignorable(self):
        manager, _ = make_manager()
        assert manager.ack(42, "vid-a") is False

    def test_complete_retires_lease_and_frees_worker(self):
        manager, _ = make_manager()
        lease = manager.grant(0, ENTRIES)
        manager.complete(lease.lease_id)
        assert manager.outstanding == 0
        assert manager.completed == 1
        assert manager.for_worker(0) is None
        manager.grant(0, ENTRIES)  # worker can lease again

    def test_revoke_returns_lease_with_unacked_for_requeue(self):
        manager, _ = make_manager()
        lease = manager.grant(0, ENTRIES)
        manager.ack(lease.lease_id, "vid-a")
        revoked = manager.revoke(lease.lease_id)
        assert revoked.unacked() == [("vid-b", 1), ("vid-c", 1)]
        assert manager.revoked == 1
        assert manager.for_worker(0) is None

    def test_complete_or_revoke_unknown_lease_raises(self):
        manager, _ = make_manager()
        with pytest.raises(LeaseError, match="unknown lease"):
            manager.complete(7)
        with pytest.raises(LeaseError, match="unknown lease"):
            manager.revoke(7)

    def test_double_revoke_raises(self):
        manager, _ = make_manager()
        lease = manager.grant(0, ENTRIES)
        manager.revoke(lease.lease_id)
        with pytest.raises(LeaseError):
            manager.revoke(lease.lease_id)


class TestOwnershipInvariant:
    def test_every_entry_in_exactly_one_place(self):
        """Pin the module invariant: queued, leased, or completed —
        never two at once, never lost — through a grant/ack/revoke/
        regrant/complete cycle."""
        manager, clock = make_manager(timeout=10.0)
        queued = list(ENTRIES)
        done = []

        lease = manager.grant(0, tuple(queued))
        leased = list(queued)
        queued.clear()

        manager.ack(lease.lease_id, "vid-a")
        clock.advance(11.0)
        stale = manager.expired()[0]
        revoked = manager.revoke(stale.lease_id)
        done.append("vid-a")
        queued.extend(revoked.unacked())
        leased.clear()

        assert sorted([entry[0] for entry in queued] + done) == sorted(
            entry[0] for entry in ENTRIES
        )

        second = manager.grant(1, tuple(queued))
        for video_id, _ in list(queued):
            manager.ack(second.lease_id, video_id)
            done.append(video_id)
        queued.clear()
        assert second.unacked() == []
        manager.complete(second.lease_id)

        assert manager.outstanding == 0
        assert manager.outstanding_entries == 0
        assert sorted(done) == sorted(entry[0] for entry in ENTRIES)
