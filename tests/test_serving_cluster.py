"""Tests for the EdgeCluster façade, chaos schedules, and reports."""

import pytest

from repro.errors import ServingError
from repro.placement.cache import LRUCache
from repro.placement.workload import Request
from repro.serving import (
    ChaosAction,
    ChaosSchedule,
    EdgeCluster,
    ReactiveOnlyPlanner,
    RoundRobinPlanner,
    TagAwarePlanner,
    run_virtual,
)
from repro.world.traffic import default_traffic_model

MARKETS = ["US", "BR", "JP"]


@pytest.fixture(scope="module")
def registry(tiny_pipeline):
    return tiny_pipeline.tag_table.registry


def _cluster(tiny_pipeline, registry, **kw):
    kw.setdefault("capacity", 16)
    return EdgeCluster(
        tiny_pipeline.dataset, registry, MARKETS, **kw
    )


class TestConstruction:
    def test_duplicate_countries_rejected(self, tiny_pipeline, registry):
        with pytest.raises(ServingError):
            EdgeCluster(
                tiny_pipeline.dataset, registry, ["US", "US"], capacity=4
            )

    def test_empty_fleet_rejected(self, tiny_pipeline, registry):
        with pytest.raises(ServingError):
            EdgeCluster(tiny_pipeline.dataset, registry, [], capacity=4)

    def test_default_planner_is_reactive(self, tiny_pipeline, registry):
        cluster = _cluster(tiny_pipeline, registry)
        assert cluster.planner.name == "reactive"
        assert [r.replica_id for r in cluster.replicas] == [
            "edge-US", "edge-BR", "edge-JP"
        ]

    def test_top_markets_ranked_by_traffic(self, registry):
        traffic = default_traffic_model(registry)
        markets = EdgeCluster.top_markets(traffic, 4)
        assert len(markets) == 4
        shares = [traffic.share(code) for code in markets]
        assert shares == sorted(shares, reverse=True)
        assert all(
            traffic.share(code) <= shares[-1]
            for code in registry.codes()
            if code not in markets
        )


class TestChaosSchedule:
    def test_actions_sorted_and_validated(self):
        schedule = ChaosSchedule(
            [
                ChaosAction(50, "recover", "edge-US"),
                ChaosAction(10, "fail", "edge-US"),
            ]
        )
        assert len(schedule) == 2
        assert not schedule.exhausted

    def test_unknown_action_rejected(self):
        with pytest.raises(ServingError):
            ChaosSchedule([ChaosAction(1, "explode", "edge-US")])

    def test_negative_index_rejected(self):
        with pytest.raises(ServingError):
            ChaosSchedule([ChaosAction(-1, "fail", "edge-US")])

    def test_kill_builder_validates_recovery(self):
        with pytest.raises(ServingError):
            ChaosSchedule.kill(["edge-US"], at_request=10, recover_at=10)
        schedule = ChaosSchedule.kill(
            ["edge-US", "edge-BR"], at_request=5, recover_at=9
        )
        assert len(schedule) == 4

    def test_apply_flips_liveness_and_reset_rewinds(
        self, tiny_pipeline, registry
    ):
        cluster = _cluster(tiny_pipeline, registry)
        schedule = ChaosSchedule.kill(["edge-BR"], at_request=3, recover_at=7)
        schedule.apply(cluster, 2)
        assert cluster.replica("edge-BR").alive
        schedule.apply(cluster, 5)
        assert not cluster.replica("edge-BR").alive
        schedule.apply(cluster, 8)
        assert cluster.replica("edge-BR").alive
        assert schedule.exhausted
        schedule.reset()
        assert not schedule.exhausted


class TestWarmAndServe:
    def test_warm_places_plan(self, tiny_pipeline, registry, tiny_predictor):
        cluster = _cluster(
            tiny_pipeline,
            registry,
            planner=TagAwarePlanner(tiny_predictor, replicas_per_video=2),
        )
        placed = run_virtual(cluster.warm())
        assert placed > 0
        assert cluster.placed == placed
        total_cached = sum(len(r.cache) for r in cluster.replicas)
        assert total_cached == placed

    def test_warm_with_catalogue_subset(
        self, tiny_pipeline, registry, tiny_predictor
    ):
        cluster = _cluster(
            tiny_pipeline,
            registry,
            planner=TagAwarePlanner(tiny_predictor, replicas_per_video=1),
        )
        subset = list(tiny_pipeline.dataset)[:5]
        placed = run_virtual(cluster.warm(subset))
        assert 0 < placed <= 5
        cached = set().union(*(r.cache.contents() for r in cluster.replicas))
        assert cached <= {video.video_id for video in subset}

    def test_serve_trace_accounting(self, tiny_pipeline, registry, tiny_trace):
        cluster = _cluster(tiny_pipeline, registry)
        trace = tiny_trace(2000, seed=11)

        report = run_virtual(cluster.serve_trace(trace, concurrency=16))
        assert report.requests == 2000
        assert report.failed == 0
        assert (
            report.local_hits + report.remote_hits + report.origin_fetches
            == 2000
        )
        assert 0.0 <= report.hit_ratio <= report.replica_hit_ratio <= 1.0
        assert report.p50_km <= report.p99_km
        assert report.virtual_seconds > 0.0

    def test_reports_are_delta_windows(self, tiny_pipeline, registry, tiny_trace):
        cluster = _cluster(tiny_pipeline, registry)
        trace = list(tiny_trace(1000, seed=12))

        async def main():
            first = await cluster.serve_trace(trace[:400], concurrency=8)
            second = await cluster.serve_trace(trace[400:], concurrency=8)
            return first, second

        first, second = run_virtual(main())
        assert first.requests == 400
        assert second.requests == 600
        # The second window re-serves a warmed cache: no cold misses.
        assert second.hit_ratio >= first.hit_ratio

    def test_rewarm_repins_evicted_plan(
        self, tiny_pipeline, registry, tiny_predictor, tiny_trace
    ):
        planner = TagAwarePlanner(tiny_predictor, replicas_per_video=2)
        cluster = _cluster(tiny_pipeline, registry, planner=planner, capacity=8)
        trace = tiny_trace(3000, seed=13)

        async def main():
            await cluster.warm()
            return await cluster.serve_trace(
                trace, concurrency=16, rewarm_every=500
            )

        report = run_virtual(main())
        assert report.requests == 3000
        assert report.failed == 0
        # 3000 requests at rewarm_every=500 fire five re-warms on top of
        # the initial warm — each re-pushes the (memoized) plan.
        assert cluster.controller.stats.pushes >= 6 * cluster.placed

    def test_catalogue_at_requires_rewarm(self, tiny_pipeline, registry):
        cluster = _cluster(tiny_pipeline, registry)
        with pytest.raises(ServingError):
            run_virtual(
                cluster.serve_trace(
                    [Request(next(iter(tiny_pipeline.dataset)).video_id, "US")],
                    catalogue_at=lambda i: tiny_pipeline.dataset,
                )
            )

    def test_invalid_knobs_rejected(self, tiny_pipeline, registry):
        cluster = _cluster(tiny_pipeline, registry)
        with pytest.raises(ServingError):
            run_virtual(cluster.serve_trace([], concurrency=0))
        with pytest.raises(ServingError):
            run_virtual(cluster.serve_trace([], rewarm_every=0))

    def test_round_robin_spreads_copies(self, tiny_pipeline, registry):
        cluster = _cluster(
            tiny_pipeline, registry, planner=RoundRobinPlanner(), capacity=10
        )
        run_virtual(cluster.warm())
        sizes = [len(r.cache) for r in cluster.replicas]
        assert max(sizes) - min(sizes) <= 1

    def test_chaos_mid_trace_never_fails_requests(
        self, tiny_pipeline, registry, tiny_trace
    ):
        cluster = _cluster(tiny_pipeline, registry)
        trace = tiny_trace(2000, seed=14)
        chaos = ChaosSchedule.kill(
            ["edge-BR", "edge-JP"], at_request=500, recover_at=1500
        )

        report = run_virtual(
            cluster.serve_trace(trace, concurrency=16, chaos=chaos)
        )
        assert report.failed == 0
        assert report.requests == 2000
        assert chaos.exhausted


class TestReport:
    def test_as_rows_round_trips(self, tiny_pipeline, registry, tiny_trace):
        cluster = _cluster(tiny_pipeline, registry)
        report = run_virtual(
            cluster.serve_trace(tiny_trace(500, seed=15), concurrency=8)
        )
        rows = dict(report.as_rows())
        assert rows["requests"] == 500.0
        assert rows["hit_ratio"] == report.hit_ratio
        assert rows["p99_km"] == report.p99_km

    def test_planner_name_recorded(self, tiny_pipeline, registry):
        cluster = _cluster(
            tiny_pipeline, registry, planner=ReactiveOnlyPlanner()
        )
        report = run_virtual(cluster.serve_trace([], concurrency=1))
        assert report.planner == "reactive"
        assert report.requests == 0
        assert report.p50_km == 0.0
