"""Unit tests for geographic affinity profile generation."""

import numpy as np
import pytest

from repro.analysis.metrics import jensen_shannon
from repro.errors import ConfigError
from repro.synth.geo_profiles import (
    GLOBAL_FLOOR,
    GeoProfile,
    GeoProfileFactory,
    ProfileKind,
)
from repro.synth.rng import spawn_rng


@pytest.fixture()
def factory(registry, traffic):
    return GeoProfileFactory(registry, traffic, rng=spawn_rng(1, "test-profiles"))


def assert_valid_profile(profile, registry):
    assert profile.shares.shape == (len(registry),)
    assert np.all(profile.shares > 0)
    assert profile.shares.sum() == pytest.approx(1.0)


class TestGeoProfileValidation:
    def test_negative_shares_rejected(self, registry):
        shares = np.full(len(registry), 1.0 / len(registry))
        shares[0] = -shares[0]
        with pytest.raises(ConfigError):
            GeoProfile(ProfileKind.GLOBAL, None, shares)

    def test_unnormalized_rejected(self, registry):
        shares = np.full(len(registry), 1.0)
        with pytest.raises(ConfigError):
            GeoProfile(ProfileKind.GLOBAL, None, shares)

    def test_zero_entry_rejected(self, registry):
        shares = np.full(len(registry), 1.0 / (len(registry) - 1))
        shares[0] = 0.0
        shares = shares / shares.sum()
        shares[0] = 0.0
        with pytest.raises(ConfigError):
            GeoProfile(ProfileKind.GLOBAL, None, shares)


class TestGlobalProfiles:
    def test_valid_distribution(self, factory, registry):
        assert_valid_profile(factory.sample_global(), registry)

    def test_hugs_traffic_prior(self, factory, traffic):
        profile = factory.sample_global()
        assert jensen_shannon(profile.shares, traffic.as_vector()) < 0.05

    def test_kind_and_anchor(self, factory):
        profile = factory.sample_global()
        assert profile.kind is ProfileKind.GLOBAL
        assert profile.anchor is None


class TestCountryProfiles:
    def test_anchor_dominates(self, factory, registry):
        profile = factory.sample_country("BR")
        assert_valid_profile(profile, registry)
        assert profile.anchor == "BR"
        assert profile.top_country(registry) == "BR"
        assert profile.shares[registry.index_of("BR")] >= 0.5

    def test_language_spillover(self, factory, registry):
        # A Brazil profile spills into Portugal (shared language) more than
        # into a random same-size non-lusophone country.
        profile = factory.sample_country("BR")
        pt_share = profile.shares[registry.index_of("PT")]
        hu_share = profile.shares[registry.index_of("HU")]
        assert pt_share > hu_share

    def test_random_anchor_drawn_by_online_population(self, factory):
        anchors = {factory.sample_country().anchor for _ in range(50)}
        assert len(anchors) > 3  # diverse anchors

    def test_far_from_prior(self, factory, traffic):
        profile = factory.sample_country("BR")
        assert jensen_shannon(profile.shares, traffic.as_vector()) > 0.2


class TestLanguageAndRegionProfiles:
    def test_language_profile_concentrates_on_cluster(self, factory, registry):
        profile = factory.sample_language("portuguese")
        assert_valid_profile(profile, registry)
        cluster_share = sum(
            profile.shares[registry.index_of(code)] for code in ("BR", "PT")
        )
        assert cluster_share > 0.8

    def test_unknown_language_rejected(self, factory):
        with pytest.raises(ConfigError):
            factory.sample_language("klingon")

    def test_region_profile_concentrates_on_region(self, factory, registry):
        profile = factory.sample_region("northern-europe")
        assert_valid_profile(profile, registry)
        region_share = sum(
            profile.shares[registry.index_of(code)]
            for code in ("SE", "NO", "DK", "FI", "IS")
        )
        assert region_share > 0.8

    def test_unknown_region_rejected(self, factory):
        with pytest.raises(ConfigError):
            factory.sample_region("atlantis")


class TestDispatchAndFloor:
    def test_sample_dispatches_every_kind(self, factory, registry):
        for kind in ProfileKind:
            profile = factory.sample(kind)
            assert profile.kind is kind
            assert_valid_profile(profile, registry)

    def test_floor_guarantees_minimum_everywhere(self, factory, registry, traffic):
        profile = factory.sample_country("BR")
        floor = GLOBAL_FLOOR * traffic.as_vector()
        # Every country keeps at least ~its floor share (tolerance for
        # renormalization).
        assert np.all(profile.shares >= floor * 0.5)

    def test_determinism_under_seeded_rng(self, registry, traffic):
        a = GeoProfileFactory(registry, traffic, rng=spawn_rng(9, "p")).sample_global()
        b = GeoProfileFactory(registry, traffic, rng=spawn_rng(9, "p")).sample_global()
        assert np.array_equal(a.shares, b.shares)

    def test_invalid_constructor_params_rejected(self, registry, traffic):
        with pytest.raises(ConfigError):
            GeoProfileFactory(registry, traffic, global_dirichlet=0.0)
        with pytest.raises(ConfigError):
            GeoProfileFactory(registry, traffic, country_spill=1.0)
