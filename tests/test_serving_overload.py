"""Overload & regional-failover tests: bounded replicas, admission
control, hedged requests, health probes, flash crowds, blackouts, and
the adaptive planner.

All async pieces run on virtual time (:func:`run_virtual` /
:class:`SimulationHarness`): saturation, queueing delay, hedge
deadlines, and breaker resets elapse deterministically and instantly.
"""

import asyncio

import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.video import Video
from repro.errors import (
    ReplicaDownError,
    ReplicaOverloadedError,
    RequestShedError,
    ServingError,
)
from repro.placement.cache import LRUCache
from repro.serving import (
    BACKGROUND,
    INTERACTIVE,
    STANDARD,
    AdaptiveTagPlanner,
    AdmissionController,
    AdmissionPolicy,
    ChaosSchedule,
    Controller,
    EdgeCluster,
    FlashCrowdWave,
    HedgePolicy,
    Origin,
    Replica,
    ShedResult,
    SimulationHarness,
    TagAwarePlanner,
    inject_flash_crowd,
    run_virtual,
)
from repro.world.countries import default_registry

VIDEOS = [
    Video(
        video_id=f"BBBBBBBBB{i:02d}",
        title=f"video {i}",
        uploader="uploader",
        upload_date="2011-01-01",
        views=1000 - i,
        tags=("music",),
    )
    for i in range(8)
]
VIDEO_IDS = [video.video_id for video in VIDEOS]


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def catalogue(registry):
    return Dataset(VIDEOS, registry=registry)


def make_replica(**kwargs):
    defaults = dict(latency_seconds=0.01)
    defaults.update(kwargs)
    return Replica("edge-US", "US", LRUCache(4), **defaults)


# ---------------------------------------------------------------------------
# Bounded replica capacity model
# ---------------------------------------------------------------------------


class TestBoundedReplica:
    def test_unbounded_by_default(self):
        replica = make_replica()
        assert replica.concurrency is None
        assert replica.utilization == 0.0
        assert replica.load_factor() == 0.0
        assert not replica.health().saturated

    def test_overload_rejects_beyond_slots_and_queue(self):
        replica = make_replica(
            concurrency=1, queue_depth=1, service_seconds=1.0
        )
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            first = asyncio.get_event_loop().create_task(
                replica.get(VIDEO_IDS[0])
            )
            second = asyncio.get_event_loop().create_task(
                replica.get(VIDEO_IDS[0])
            )
            await asyncio.sleep(0.5)  # both past latency: slot + queue full
            assert replica.inflight == 1
            assert replica.waiting == 1
            assert replica.health().saturated
            with pytest.raises(ReplicaOverloadedError):
                await replica.get(VIDEO_IDS[0])
            assert await first is True
            assert await second is True

        run_virtual(scenario())
        assert replica.stats.rejected_overload == 1
        assert replica.stats.queued == 1
        assert replica.stats.gets == 2
        assert replica.stats.peak_inflight == 1
        assert replica.inflight == 0 and replica.waiting == 0

    def test_queueing_costs_virtual_time(self):
        replica = make_replica(
            latency_seconds=0.0, concurrency=1, queue_depth=4,
            service_seconds=1.0,
        )
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            loop = asyncio.get_event_loop()
            started = loop.time()
            await asyncio.gather(
                *[replica.get(VIDEO_IDS[0]) for _ in range(3)]
            )
            return loop.time() - started

        elapsed = run_virtual(scenario())
        # Three 1s services through one slot: strictly serialized.
        assert elapsed == pytest.approx(3.0)
        assert replica.stats.queued == 2
        assert replica.stats.peak_inflight == 1

    def test_utilization_and_load_factor(self):
        replica = make_replica(
            latency_seconds=0.0, concurrency=2, queue_depth=2,
            service_seconds=1.0,
        )
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            tasks = [
                asyncio.get_event_loop().create_task(
                    replica.get(VIDEO_IDS[0])
                )
                for _ in range(3)
            ]
            await asyncio.sleep(0.5)
            health = replica.health()
            assert health.inflight == 2
            assert health.waiting == 1
            assert health.utilization == pytest.approx(1.0)
            assert health.load_factor == pytest.approx(0.75)
            assert not health.saturated
            await asyncio.gather(*tasks)

        run_virtual(scenario())

    def test_config_validation(self):
        with pytest.raises(ServingError):
            make_replica(concurrency=0)
        with pytest.raises(ServingError):
            make_replica(queue_depth=-1)
        with pytest.raises(ServingError):
            make_replica(service_seconds=-0.1)


# ---------------------------------------------------------------------------
# Satellite 2: fail() mid-flight rejects deterministically, no phantoms
# ---------------------------------------------------------------------------


class TestInFlightKill:
    def test_get_killed_mid_flight_no_phantom_hit(self):
        replica = make_replica(latency_seconds=0.1)
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            task = asyncio.get_event_loop().create_task(
                replica.get(VIDEO_IDS[0])
            )
            await asyncio.sleep(0.05)  # the get is mid-network
            replica.fail()
            with pytest.raises(ReplicaDownError):
                await task

        run_virtual(scenario())
        # The lookup never completed: no counters, no cache read.
        assert replica.stats.gets == 0
        assert replica.stats.hits == 0
        assert replica.stats.misses == 0
        assert replica.stats.killed_in_flight == 1

    def test_push_killed_mid_flight_no_phantom_pin(self):
        replica = make_replica(latency_seconds=0.1)

        async def scenario():
            task = asyncio.get_event_loop().create_task(
                replica.push(VIDEO_IDS[1])
            )
            await asyncio.sleep(0.05)
            replica.fail()
            with pytest.raises(ReplicaDownError):
                await task

        run_virtual(scenario())
        assert replica.stats.pushes == 0
        assert VIDEO_IDS[1] not in replica.cache
        assert replica.stats.killed_in_flight == 1

    def test_queued_waiters_drain_on_kill(self):
        replica = make_replica(
            latency_seconds=0.0, concurrency=1, queue_depth=2,
            service_seconds=1.0,
        )
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            loop = asyncio.get_event_loop()
            holder = loop.create_task(replica.get(VIDEO_IDS[0]))
            queued = loop.create_task(replica.get(VIDEO_IDS[0]))
            await asyncio.sleep(0.5)
            assert replica.inflight == 1 and replica.waiting == 1
            replica.fail()
            with pytest.raises(ReplicaDownError):
                await queued  # failed immediately, not after the slot
            with pytest.raises(ReplicaDownError):
                await holder  # rejected at its next await point

        run_virtual(scenario())
        assert replica.stats.gets == 0
        assert replica.stats.killed_in_flight == 2
        assert replica.inflight == 0 and replica.waiting == 0

    def test_recovery_after_in_flight_kill_serves_cleanly(self):
        replica = make_replica(
            latency_seconds=0.01, concurrency=2, queue_depth=2,
            service_seconds=0.05,
        )
        replica.cache.pin(VIDEO_IDS[0])

        async def scenario():
            task = asyncio.get_event_loop().create_task(
                replica.get(VIDEO_IDS[0])
            )
            await asyncio.sleep(0.005)
            replica.fail()
            with pytest.raises(ReplicaDownError):
                await task
            replica.recover()
            assert await replica.get(VIDEO_IDS[0]) is True

        run_virtual(scenario())
        assert replica.stats.gets == 1
        assert replica.stats.hits == 1
        assert replica.inflight == 0


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionPolicy:
    def test_below_threshold_admits(self):
        policy = AdmissionPolicy()
        assert policy.decide(0.1, INTERACTIVE, now=0.0) is None
        assert policy.decide(0.5, BACKGROUND, now=0.0) is None

    def test_saturated_sheds_everything(self):
        policy = AdmissionPolicy()
        for priority in (INTERACTIVE, STANDARD, BACKGROUND):
            assert policy.decide(1.0, priority, now=0.0) == "saturated"
            assert policy.decide(2.0, priority, now=0.0) == "saturated"

    def test_priorities_shed_in_order(self):
        # At a load between the background and standard thresholds,
        # only background traffic is at risk.
        policy = AdmissionPolicy(seed=3)
        load = 0.75
        assert policy.decide(load, INTERACTIVE, now=0.0) is None
        assert policy.decide(load, STANDARD, now=0.0) is None
        decisions = [
            policy.decide(load, BACKGROUND, now=float(i)) for i in range(200)
        ]
        assert any(d == "overload" for d in decisions)
        assert any(d is None for d in decisions)

    def test_decisions_are_seed_deterministic(self):
        a = AdmissionPolicy(seed=5)
        b = AdmissionPolicy(seed=5)
        loads = [0.65, 0.7, 0.9, 0.95, 0.99] * 20
        decisions_a = [
            a.decide(load, BACKGROUND, now=float(i))
            for i, load in enumerate(loads)
        ]
        decisions_b = [
            b.decide(load, BACKGROUND, now=float(i))
            for i, load in enumerate(loads)
        ]
        assert decisions_a == decisions_b
        other = AdmissionPolicy(seed=6)
        decisions_c = [
            other.decide(load, BACKGROUND, now=float(i))
            for i, load in enumerate(loads)
        ]
        assert decisions_c != decisions_a

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            AdmissionPolicy(max_inflight=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(thresholds={STANDARD: 1.5})


class TestAdmissionController:
    def _gate(
        self, registry, catalogue, concurrency=1, queue_depth=1,
        **policy_kwargs,
    ):
        replicas = [
            Replica(
                "edge-US", "US", LRUCache(4),
                latency_seconds=0.0, concurrency=concurrency,
                queue_depth=queue_depth, service_seconds=1.0,
            ),
        ]
        controller = Controller(
            Origin(catalogue, latency_seconds=0.0), replicas, registry
        )
        gate = AdmissionController(
            controller, AdmissionPolicy(**policy_kwargs)
        )
        return gate, replicas[0]

    def test_served_or_shed_exactly_once_under_burst(
        self, registry, catalogue
    ):
        gate, _ = self._gate(registry, catalogue, max_inflight=256, seed=1)

        async def scenario():
            return await asyncio.gather(
                *[
                    gate.get(VIDEO_IDS[0], "US", priority=STANDARD)
                    for _ in range(12)
                ]
            )

        results = run_virtual(scenario())
        stats = gate.stats
        assert stats.offered == 12
        assert stats.offered == stats.served + stats.shed
        assert stats.errors == 0
        served = [r for r in results if not r.shed]
        shed = [r for r in results if r.shed]
        assert len(served) == stats.served
        assert len(shed) == stats.shed
        # The 1-slot + 1-queue home saturates: the burst cannot all land.
        assert stats.shed > 0
        for result in shed:
            assert isinstance(result, ShedResult)
            assert result.reason in ("overload", "saturated")
            assert not result.hit

    def test_interactive_survives_where_background_sheds(
        self, registry, catalogue
    ):
        # A burst that drives the home into the ramp zone (load between
        # the background and interactive thresholds) but never to full
        # saturation: interactive rides it out, background sheds.
        shed_by_priority = {}
        for priority in (INTERACTIVE, BACKGROUND):
            gate, _ = self._gate(
                registry, catalogue, concurrency=4, queue_depth=4,
                max_inflight=256, seed=1,
            )

            async def scenario():
                return await asyncio.gather(
                    *[
                        gate.get(VIDEO_IDS[0], "US", priority=priority)
                        for _ in range(8)
                    ]
                )

            run_virtual(scenario())
            shed_by_priority[priority] = gate.stats.shed
        assert shed_by_priority[INTERACTIVE] == 0
        assert shed_by_priority[BACKGROUND] > 0

    def test_raise_on_shed(self, registry, catalogue):
        gate, _ = self._gate(registry, catalogue, max_inflight=256, seed=1)

        async def scenario():
            # Cache the video on the home so gets occupy its one slot.
            await gate.controller.push("edge-US", VIDEO_IDS[0])
            first = asyncio.get_event_loop().create_task(
                gate.get(VIDEO_IDS[0], "US")
            )
            second = asyncio.get_event_loop().create_task(
                gate.get(VIDEO_IDS[0], "US")
            )
            await asyncio.sleep(0.1)  # home now saturated (1 + 1)
            with pytest.raises(RequestShedError):
                await gate.get(
                    VIDEO_IDS[0], "US", priority=BACKGROUND,
                    raise_on_shed=True,
                )
            await asyncio.gather(first, second)

        run_virtual(scenario())
        assert gate.stats.shed == 1
        assert gate.stats.shed_background == 1

    def test_dead_home_does_not_shed(self, registry, catalogue):
        gate, replica = self._gate(registry, catalogue, max_inflight=256)
        replica.fail()

        async def scenario():
            return await asyncio.gather(
                *[gate.get(VIDEO_IDS[0], "US") for _ in range(8)]
            )

        results = run_virtual(scenario())
        # A dead home means reroute-to-origin, not shed: survivors (the
        # origin here) can absorb the load.
        assert gate.stats.shed == 0
        assert all(r.source == "origin" for r in results)


# ---------------------------------------------------------------------------
# Hedged requests
# ---------------------------------------------------------------------------


class TestHedging:
    def test_deadline_adapts_to_observed_latency(self):
        policy = HedgePolicy(
            multiplier=2.0, min_deadline=0.001, initial_deadline=0.05,
            alpha=0.5,
        )
        assert policy.deadline() == 0.05
        policy.observe(0.01)
        assert policy.deadline() == pytest.approx(0.02)
        policy.observe(0.03)
        assert policy.deadline() == pytest.approx(2.0 * 0.02)

    def _controller(self, registry, catalogue, slow=0.2, fast=0.01):
        slow_replica = Replica(
            "edge-US", "US", LRUCache(4), latency_seconds=slow
        )
        fast_replica = Replica(
            "edge-CA", "CA", LRUCache(4), latency_seconds=fast
        )
        controller = Controller(
            Origin(catalogue, latency_seconds=0.0),
            [slow_replica, fast_replica],
            registry,
            hedge=HedgePolicy(initial_deadline=0.05, min_deadline=0.01),
        )
        return controller, slow_replica, fast_replica

    def test_hedge_fires_and_secondary_wins(self, registry, catalogue):
        controller, slow, fast = self._controller(registry, catalogue)

        async def scenario():
            await controller.push("edge-US", VIDEO_IDS[0])
            await controller.push("edge-CA", VIDEO_IDS[0])
            return await controller.get(VIDEO_IDS[0], "US")

        result = run_virtual(scenario())
        stats = controller.stats
        # Primary (home, 0.2s) blew the 0.05s deadline; the hedge fired
        # at the fast peer and won; the slow loser was cancelled.
        assert stats.hedges == 1
        assert stats.hedge_wins == 1
        assert stats.hedge_cancelled == 1
        assert result.hedged
        assert result.source == "remote"
        assert result.served_by == "edge-CA"
        # Exactly once despite the duplicate probe.
        assert stats.requests == 1
        assert stats.local_hits + stats.remote_hits + stats.origin_fetches == 1
        # The cancelled probe completed nothing on the slow replica.
        assert slow.stats.gets == 0

    def test_fast_primary_never_hedges(self, registry, catalogue):
        controller, _, _ = self._controller(
            registry, catalogue, slow=0.01, fast=0.01
        )

        async def scenario():
            await controller.push("edge-US", VIDEO_IDS[0])
            await controller.push("edge-CA", VIDEO_IDS[0])
            return await controller.get(VIDEO_IDS[0], "US")

        result = run_virtual(scenario())
        assert controller.stats.hedges == 0
        assert not result.hedged
        assert result.source == "local"

    def test_hedged_route_is_deterministic(self, registry, catalogue):
        def run_once():
            controller, _, _ = self._controller(registry, catalogue)

            async def scenario():
                await controller.push("edge-US", VIDEO_IDS[0])
                await controller.push("edge-CA", VIDEO_IDS[0])
                results = []
                for _ in range(20):
                    results.append(await controller.get(VIDEO_IDS[0], "US"))
                return [
                    (r.source, r.served_by, r.hedged, r.probes)
                    for r in results
                ]

            return run_virtual(scenario()), controller.stats

        outcomes_a, stats_a = run_once()
        outcomes_b, stats_b = run_once()
        assert outcomes_a == outcomes_b
        assert stats_a == stats_b

    def test_hedge_loser_releases_bounded_slots(self, registry, catalogue):
        # The cancelled loser must free its service slot: repeat hedged
        # requests against a 1-slot replica would otherwise wedge.
        slow_replica = Replica(
            "edge-US", "US", LRUCache(4),
            latency_seconds=0.0, concurrency=1, queue_depth=1,
            service_seconds=0.2,
        )
        fast_replica = Replica(
            "edge-CA", "CA", LRUCache(4), latency_seconds=0.01
        )
        controller = Controller(
            Origin(catalogue, latency_seconds=0.0),
            [slow_replica, fast_replica],
            registry,
            hedge=HedgePolicy(initial_deadline=0.05, min_deadline=0.01),
        )

        async def scenario():
            await controller.push("edge-US", VIDEO_IDS[0])
            await controller.push("edge-CA", VIDEO_IDS[0])
            for _ in range(10):
                result = await controller.get(VIDEO_IDS[0], "US")
                assert result.hit

        run_virtual(scenario())
        assert slow_replica.inflight == 0
        assert slow_replica.waiting == 0


# ---------------------------------------------------------------------------
# Active health probes
# ---------------------------------------------------------------------------


class TestHealthProbes:
    def _controller(self, registry, catalogue):
        replicas = [
            Replica("edge-US", "US", LRUCache(4), latency_seconds=0.01),
            Replica("edge-JP", "JP", LRUCache(4), latency_seconds=0.01),
        ]
        controller = Controller(
            Origin(catalogue, latency_seconds=0.0), replicas, registry
        )
        return controller, replicas

    def test_probes_report_health_and_feed_breakers(
        self, registry, catalogue
    ):
        controller, replicas = self._controller(registry, catalogue)

        async def scenario():
            healths = await controller.probe_health()
            assert set(healths) == {"edge-JP", "edge-US"}
            assert all(h is not None and h.alive for h in healths.values())
            replicas[1].fail()
            # Ping failures open the dead replica's breaker (threshold 3).
            for _ in range(3):
                await controller.probe_health()
            assert controller.breaker("edge-JP").state == "open"
            healths = await controller.probe_health()
            assert healths["edge-JP"] is None  # breaker refuses the ping
            assert healths["edge-US"] is not None

        run_virtual(scenario())
        assert controller.stats.health_probes > 0
        assert controller.stats.health_probe_failures == 3
        assert replicas[0].stats.pings >= 4

    def test_probe_closes_breaker_after_recovery_without_user_traffic(
        self, registry, catalogue
    ):
        controller, replicas = self._controller(registry, catalogue)

        async def scenario():
            replicas[1].fail()
            for _ in range(3):
                await controller.probe_health()
            assert controller.breaker("edge-JP").state == "open"
            replicas[1].recover()
            await asyncio.sleep(5.0)  # breaker reset timeout elapses
            await controller.probe_health()  # the half-open probe is a ping
            assert controller.breaker("edge-JP").state == "closed"

        run_virtual(scenario())
        # Recovery cost zero user requests.
        assert controller.stats.requests == 0


# ---------------------------------------------------------------------------
# Flash crowds and regional blackouts
# ---------------------------------------------------------------------------


class TestFlashCrowd:
    def test_injection_counts_and_window(self):
        from repro.placement.workload import Request

        base = [Request(VIDEO_IDS[i % len(VIDEO_IDS)], "US") for i in range(100)]
        wave = FlashCrowdWave(
            at_request=20, duration=30, country="JP",
            video_ids=(VIDEO_IDS[0], VIDEO_IDS[1]), intensity=2.0,
        )
        merged = list(inject_flash_crowd(base, [wave], seed=4))
        assert len(merged) == 100 + 30 * 2
        crowd = [r for r in merged if r.country == "JP"]
        assert len(crowd) == 60
        assert set(r.video_id for r in crowd) <= {VIDEO_IDS[0], VIDEO_IDS[1]}
        # Base requests survive untouched, in order.
        assert [r for r in merged if r.country == "US"] == base

    def test_fractional_intensity_accumulates(self):
        from repro.placement.workload import Request

        base = [Request(VIDEO_IDS[0], "US") for _ in range(40)]
        wave = FlashCrowdWave(
            at_request=0, duration=40, country="BR",
            video_ids=(VIDEO_IDS[0],), intensity=0.5,
        )
        merged = list(inject_flash_crowd(base, [wave], seed=0))
        assert sum(1 for r in merged if r.country == "BR") == 20

    def test_injection_is_deterministic(self):
        from repro.placement.workload import Request

        base = [Request(VIDEO_IDS[i % 4], "US") for i in range(50)]
        wave = FlashCrowdWave(
            at_request=5, duration=20, country="DE",
            video_ids=tuple(VIDEO_IDS[:4]), intensity=1.5,
        )
        a = list(inject_flash_crowd(base, [wave], seed=9))
        b = list(inject_flash_crowd(base, [wave], seed=9))
        assert a == b
        c = list(inject_flash_crowd(base, [wave], seed=10))
        assert [r.video_id for r in c] != [r.video_id for r in a]

    def test_wave_validation(self):
        with pytest.raises(ServingError):
            FlashCrowdWave(-1, 10, "US", (VIDEO_IDS[0],), 1.0)
        with pytest.raises(ServingError):
            FlashCrowdWave(0, 0, "US", (VIDEO_IDS[0],), 1.0)
        with pytest.raises(ServingError):
            FlashCrowdWave(0, 10, "US", (), 1.0)
        with pytest.raises(ServingError):
            FlashCrowdWave(0, 10, "US", (VIDEO_IDS[0],), 0.0)


class TestRegionalBlackout:
    def test_blackout_kills_whole_region_and_staggers_recovery(
        self, catalogue, registry
    ):
        cluster = EdgeCluster(
            catalogue, registry, ["US", "DE", "FR", "JP"], capacity=4
        )
        regions = cluster.replica_regions()
        assert regions["edge-DE"] == regions["edge-FR"] == "western-europe"
        chaos = cluster.blackout(
            "western-europe", at_request=10, recover_at=20, stagger=5
        )
        # 2 kills + 2 staggered recoveries.
        assert len(chaos) == 4
        chaos.apply(cluster, 10)
        assert not cluster.replica("edge-DE").alive
        assert not cluster.replica("edge-FR").alive
        assert cluster.replica("edge-US").alive
        chaos.apply(cluster, 20)  # first recovery only
        assert cluster.replica("edge-DE").alive
        assert not cluster.replica("edge-FR").alive
        chaos.apply(cluster, 25)
        assert cluster.replica("edge-FR").alive
        assert chaos.exhausted

    def test_unknown_region_raises(self, catalogue, registry):
        cluster = EdgeCluster(catalogue, registry, ["US"], capacity=4)
        with pytest.raises(ServingError):
            cluster.blackout("atlantis", at_request=0)

    def test_merge_combines_schedules(self, catalogue, registry):
        cluster = EdgeCluster(
            catalogue, registry, ["US", "DE", "FR"], capacity=4
        )
        merged = ChaosSchedule.merge(
            cluster.blackout("western-europe", at_request=5, recover_at=15),
            ChaosSchedule.kill(["edge-US"], at_request=8, recover_at=12),
        )
        assert len(merged) == 6
        merged.apply(cluster, 8)
        assert not cluster.replica("edge-US").alive
        assert not cluster.replica("edge-DE").alive
        merged.apply(cluster, 15)
        assert all(r.alive for r in cluster.replicas)

    def test_blackout_recovery_is_cold_by_default(self, catalogue, registry):
        # A regional blackout restarts the edge processes: the replicas
        # come back alive but EMPTY — proactive re-warming (or slow
        # reactive refill) is what restores them, never free survival
        # of the cache across a power loss.
        cluster = EdgeCluster(
            catalogue, registry, ["US", "DE", "FR"], capacity=4
        )

        async def place():
            for rid in ("edge-US", "edge-DE", "edge-FR"):
                await cluster.controller.push(rid, VIDEO_IDS[0])

        run_virtual(place())
        assert len(cluster.replica("edge-DE").cache) > 0
        chaos = cluster.blackout(
            "western-europe", at_request=5, recover_at=10
        )
        chaos.apply(cluster, 5)
        chaos.apply(cluster, 10)
        for rid in ("edge-DE", "edge-FR"):
            replica = cluster.replica(rid)
            assert replica.alive
            assert len(replica.cache) == 0
        # The bystander kept its copies.
        assert len(cluster.replica("edge-US").cache) > 0

    def test_blackout_can_opt_into_warm_recovery(self, catalogue, registry):
        cluster = EdgeCluster(catalogue, registry, ["US", "DE"], capacity=4)
        run_virtual(cluster.controller.push("edge-DE", VIDEO_IDS[0]))
        warm_contents = cluster.replica("edge-DE").contents()
        assert warm_contents
        chaos = cluster.blackout(
            "western-europe", at_request=0, recover_at=1, cold_recovery=False
        )
        chaos.apply(cluster, 1)
        assert cluster.replica("edge-DE").contents() == warm_contents

    def test_plain_kill_recover_stays_warm(self, catalogue, registry):
        # Backward compatibility: ChaosSchedule.kill models a partition,
        # not a restart — contents survive.
        cluster = EdgeCluster(catalogue, registry, ["US", "DE"], capacity=4)
        run_virtual(cluster.controller.push("edge-DE", VIDEO_IDS[0]))
        warm_contents = cluster.replica("edge-DE").contents()
        assert warm_contents
        chaos = ChaosSchedule.kill(["edge-DE"], at_request=0, recover_at=1)
        chaos.apply(cluster, 1)
        assert cluster.replica("edge-DE").contents() == warm_contents


# ---------------------------------------------------------------------------
# Adaptive planner
# ---------------------------------------------------------------------------


class TestAdaptiveTagPlanner:
    def test_no_observations_matches_static_plan(self, tiny_pipeline):
        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        fleet = [
            Replica(f"edge-{c}", c, LRUCache(8))
            for c in ("US", "JP", "BR", "DE")
        ]
        static = TagAwarePlanner(predictor, replicas_per_video=2)
        adaptive = AdaptiveTagPlanner(predictor, replicas_per_video=2)
        catalogue = tiny_pipeline.dataset
        assert adaptive.plan(catalogue, fleet, 8) == static.plan(
            catalogue, fleet, 8
        )

    def test_plans_only_over_live_replicas(self, tiny_pipeline):
        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        fleet = [
            Replica(f"edge-{c}", c, LRUCache(8))
            for c in ("US", "JP", "BR", "DE")
        ]
        planner = AdaptiveTagPlanner(predictor, replicas_per_video=2)
        fleet[1].fail()  # edge-JP goes dark
        plan = planner.plan(tiny_pipeline.dataset, fleet, 8)
        assert "edge-JP" not in plan
        assert set(plan) == {"edge-BR", "edge-DE", "edge-US"}
        # JP's demand re-placed: survivors still get full plans.
        assert sum(len(v) for v in plan.values()) > 0

    def test_observed_demand_tilts_the_plan(self, tiny_pipeline):
        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        fleet = [
            Replica(f"edge-{c}", c, LRUCache(8))
            for c in ("US", "JP", "BR", "DE")
        ]
        catalogue = tiny_pipeline.dataset
        capacity = 8
        static_plan = TagAwarePlanner(predictor, replicas_per_video=2).plan(
            catalogue, fleet, capacity
        )
        planner = AdaptiveTagPlanner(
            predictor, replicas_per_video=2, demand_boost=50.0
        )
        for _ in range(500):
            planner.observe_request("JP")
        tilted_plan = planner.plan(catalogue, fleet, capacity)
        assert tilted_plan != static_plan
        assert planner.replans == 1
        # Observations decay after the plan.
        assert planner.observed_total < 500

    def test_observe_demand_equals_equivalent_requests(self, tiny_pipeline):
        """A batch demand vector tilts exactly like unit observations."""
        import numpy as np

        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        fleet = [
            Replica(f"edge-{c}", c, LRUCache(8))
            for c in ("US", "JP", "BR", "DE")
        ]
        catalogue = tiny_pipeline.dataset
        by_requests = AdaptiveTagPlanner(
            predictor, replicas_per_video=2, demand_boost=50.0
        )
        for _ in range(500):
            by_requests.observe_request("JP")
        by_vector = AdaptiveTagPlanner(
            predictor, replicas_per_video=2, demand_boost=50.0
        )
        codes = predictor.registry.codes()
        weights = np.zeros(len(codes))
        weights[codes.index("JP")] = 500.0
        by_vector.observe_demand(weights)
        assert by_vector.plan(catalogue, fleet, 8) == by_requests.plan(
            catalogue, fleet, 8
        )

    def test_observe_demand_validates_the_vector(self, tiny_pipeline):
        import numpy as np

        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        planner = AdaptiveTagPlanner(predictor)
        n = len(predictor.registry.codes())
        with pytest.raises(ServingError, match="shape"):
            planner.observe_demand(np.zeros(n - 1))
        bad = np.zeros(n)
        bad[0] = -1.0
        with pytest.raises(ServingError, match="nonnegative"):
            planner.observe_demand(bad)
        bad[0] = float("nan")
        with pytest.raises(ServingError, match="finite"):
            planner.observe_demand(bad)

    def test_all_dead_falls_back_to_full_fleet(self, tiny_pipeline):
        from repro.placement.predictor import TagGeoPredictor

        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        fleet = [Replica("edge-US", "US", LRUCache(8))]
        fleet[0].fail()
        planner = AdaptiveTagPlanner(predictor)
        plan = planner.plan(tiny_pipeline.dataset, fleet, 4)
        assert set(plan) == {"edge-US"}


# ---------------------------------------------------------------------------
# End-to-end: flash crowd + blackout through the full cluster
# ---------------------------------------------------------------------------


class TestOverloadFailoverEndToEnd:
    N = 3000

    def _cluster(self, tiny_pipeline, planner_kind):
        from repro.placement.predictor import TagGeoPredictor

        registry = tiny_pipeline.tag_table.registry
        predictor = TagGeoPredictor(tiny_pipeline.tag_table)
        if planner_kind == "adaptive":
            planner = AdaptiveTagPlanner(predictor, replicas_per_video=3)
        else:
            planner = TagAwarePlanner(predictor, replicas_per_video=3)
        return EdgeCluster(
            tiny_pipeline.dataset,
            registry,
            ["US", "JP", "BR", "DE"],
            capacity=48,
            planner=planner,
            replica_concurrency=8,
            replica_queue_depth=8,
            replica_service_seconds=0.005,
            hedge=HedgePolicy(),
            admission=AdmissionPolicy(max_inflight=256, seed=17),
        )

    def _trace(self, tiny_pipeline, tiny_trace):
        base = tiny_trace(self.N, seed=555)
        viral = tuple(
            video.video_id for video in list(tiny_pipeline.dataset)[:6]
        )
        wave = FlashCrowdWave(
            at_request=self.N // 4, duration=self.N // 4, country="JP",
            video_ids=viral, intensity=2.0,
        )
        return list(inject_flash_crowd(base, [wave], seed=2))

    def test_exactly_once_through_crowd_and_blackout(
        self, tiny_pipeline, tiny_trace
    ):
        cluster = self._cluster(tiny_pipeline, "adaptive")
        trace = self._trace(tiny_pipeline, tiny_trace)
        chaos = cluster.blackout(
            "east-asia",
            at_request=len(trace) // 2,
            recover_at=3 * len(trace) // 4,
        )
        outcomes = []
        with SimulationHarness() as sim:
            sim.run(cluster.warm())
            report = sim.run(
                cluster.serve_trace(
                    trace,
                    concurrency=24,
                    chaos=chaos,
                    rewarm_every=len(trace) // 6,
                    rewarm_on_chaos=True,
                    probe_every=len(trace) // 10,
                    on_result=lambda i, r, km: outcomes.append(r),
                )
            )
        assert report.failed == 0
        assert report.offered == len(trace)
        assert report.offered == report.requests + report.shed
        assert len(outcomes) == len(trace)
        assert sum(1 for r in outcomes if r.shed) == report.shed
        served = [r for r in outcomes if not r.shed]
        assert len(served) == report.requests
        assert report.rewarms >= 2  # periodic + chaos-forced
        assert report.health_probes > 0
        assert chaos.exhausted

    def test_adaptive_beats_static_during_blackout(
        self, tiny_pipeline, tiny_trace
    ):
        trace = self._trace(tiny_pipeline, tiny_trace)
        blackout_at = len(trace) // 2
        reports = {}
        for kind in ("adaptive", "static"):
            cluster = self._cluster(tiny_pipeline, kind)
            chaos = cluster.blackout("east-asia", at_request=blackout_at)
            with SimulationHarness() as sim:
                sim.run(cluster.warm())
                reports[kind] = sim.run(
                    cluster.serve_trace(
                        trace,
                        concurrency=24,
                        chaos=chaos,
                        rewarm_every=len(trace) // 6,
                        rewarm_on_chaos=(kind == "adaptive"),
                    )
                )
        assert reports["adaptive"].failed == 0
        assert reports["static"].failed == 0
        # The adaptive planner re-places the dead region's catalogue on
        # survivors; the static one keeps planning for the corpse.
        assert (
            reports["adaptive"].replica_hit_ratio
            >= reports["static"].replica_hit_ratio
        )
