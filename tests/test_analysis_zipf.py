"""Unit tests for Zipf fitting."""

import numpy as np
import pytest

from repro.analysis.zipf import ZipfFit, fit_zipf, rank_frequency
from repro.errors import AnalysisError


class TestRankFrequency:
    def test_sorted_descending(self):
        ranks, freqs = rank_frequency({"a": 3, "b": 10, "c": 1})
        assert freqs.tolist() == [10, 3, 1]
        assert ranks.tolist() == [1, 2, 3]

    def test_accepts_bare_sequence(self):
        ranks, freqs = rank_frequency([5, 1, 3])
        assert freqs.tolist() == [5, 3, 1]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            rank_frequency({})

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            rank_frequency([1, -2])


class TestFitZipf:
    def test_recovers_known_exponent(self):
        counts = [int(1e6 * r ** (-1.2)) for r in range(1, 500)]
        fit = fit_zipf(counts)
        assert fit.exponent == pytest.approx(1.2, abs=0.05)
        assert fit.r_squared > 0.99

    def test_max_ranks_caps_fit(self):
        counts = [int(1e6 * r ** (-1.0)) for r in range(1, 2000)]
        fit = fit_zipf(counts, max_ranks=100)
        assert fit.ranks_used == 100

    def test_zero_counts_excluded(self):
        counts = [100, 50, 25, 0, 0]
        fit = fit_zipf(counts)
        assert fit.ranks_used == 3

    def test_too_few_counts_rejected(self):
        with pytest.raises(AnalysisError):
            fit_zipf([10, 5])

    def test_predicted_frequency(self):
        fit = ZipfFit(exponent=1.0, intercept=np.log(100.0), r_squared=1.0, ranks_used=10)
        assert fit.predicted_frequency(1) == pytest.approx(100.0)
        assert fit.predicted_frequency(10) == pytest.approx(10.0)

    def test_predicted_frequency_invalid_rank(self):
        fit = ZipfFit(exponent=1.0, intercept=0.0, r_squared=1.0, ranks_used=3)
        with pytest.raises(AnalysisError):
            fit.predicted_frequency(0)

    def test_crawled_corpus_tag_usage_is_zipfian(self, tiny_dataset):
        fit = fit_zipf(tiny_dataset.tag_frequencies(), max_ranks=200)
        assert 0.5 < fit.exponent < 2.0
        assert fit.r_squared > 0.8
