"""Tests for view-history placement."""

import pytest

from repro.errors import PlacementError
from repro.placement.history import HistoryPlacement
from repro.placement.workload import Request, RequestTrace, WorkloadGenerator


@pytest.fixture(scope="module")
def training(tiny_trace):
    return tiny_trace(5000, seed=55)


class TestHistoryPlacement:
    def test_observed_video_placed_where_watched(self, tiny_pipeline):
        video = next(iter(tiny_pipeline.dataset))
        trace = RequestTrace(
            tuple(Request(video.video_id, "BR") for _ in range(10))
        )
        policy = HistoryPlacement(
            trace, tiny_pipeline.universe.traffic, replicas=1
        )
        placement = policy.place(video)
        assert list(placement) == ["BR"]

    def test_unseen_video_falls_back_to_prior(self, tiny_pipeline, training):
        traffic = tiny_pipeline.universe.traffic
        policy = HistoryPlacement(training, traffic, replicas=3)
        from repro.datamodel.video import Video

        stranger = Video(
            video_id="AAAAAAAAAAA",
            title="t", uploader="u", upload_date="2010-01-01",
            views=10, tags=("x",),
        )
        assert not policy.has_history("AAAAAAAAAAA")
        expected = sorted(
            traffic.registry.codes(), key=traffic.share, reverse=True
        )[:3]
        assert set(policy.place(stranger)) == set(expected)

    def test_observed_counts_drive_ranking(self, tiny_pipeline):
        video = next(iter(tiny_pipeline.dataset))
        requests = tuple(
            [Request(video.video_id, "BR")] * 7
            + [Request(video.video_id, "JP")] * 3
        )
        policy = HistoryPlacement(
            RequestTrace(requests),
            tiny_pipeline.universe.traffic,
            replicas=2,
        )
        placement = policy.place(video)
        assert list(placement)[0] == "BR"
        assert placement["BR"] > placement["JP"]

    def test_smoothing_blends_prior(self, tiny_pipeline):
        video = next(iter(tiny_pipeline.dataset))
        trace = RequestTrace((Request(video.video_id, "SG"),))
        raw = HistoryPlacement(
            trace, tiny_pipeline.universe.traffic, replicas=5, smoothing=0.0
        )
        smoothed = HistoryPlacement(
            trace, tiny_pipeline.universe.traffic, replicas=5, smoothing=10.0
        )
        # With one SG observation, raw placement is SG-only signal; heavy
        # smoothing pulls big prior markets into the top-5.
        assert list(raw.place(video))[0] == "SG"
        assert "US" in smoothed.place(video)

    def test_observed_videos_counter(self, tiny_pipeline, training):
        policy = HistoryPlacement(
            training, tiny_pipeline.universe.traffic, replicas=3
        )
        distinct = len({r.video_id for r in training})
        assert policy.observed_videos() == distinct

    def test_negative_smoothing_rejected(self, tiny_pipeline, training):
        with pytest.raises(PlacementError):
            HistoryPlacement(
                training,
                tiny_pipeline.universe.traffic,
                replicas=3,
                smoothing=-1.0,
            )

    def test_blend_equals_tags_on_cold_video(
        self, tiny_pipeline, training, tiny_predictor
    ):
        from repro.placement.history import BlendedPlacement
        from repro.placement.policies import TagPredictivePlacement

        predictor = tiny_predictor
        history = HistoryPlacement(
            RequestTrace(()), tiny_pipeline.universe.traffic, replicas=5
        )
        blend = BlendedPlacement(history, predictor, replicas=5)
        tags = TagPredictivePlacement(predictor, replicas=5)
        video = next(iter(tiny_pipeline.dataset))
        assert set(blend.place(video)) == set(tags.place(video))

    def test_blend_follows_history_when_data_dominates(
        self, tiny_pipeline, tiny_predictor
    ):
        from repro.placement.history import BlendedPlacement

        video = next(iter(tiny_pipeline.dataset))
        # 10,000 observations in IS swamp a pseudo-count of 20.
        trace = RequestTrace(
            tuple(Request(video.video_id, "IS") for _ in range(10_000))
        )
        predictor = tiny_predictor
        history = HistoryPlacement(
            trace, tiny_pipeline.universe.traffic, replicas=1
        )
        blend = BlendedPlacement(history, predictor, replicas=1)
        assert list(blend.place(video)) == ["IS"]

    def test_blend_invalid_pseudo_count(
        self, tiny_pipeline, training, tiny_predictor
    ):
        from repro.placement.history import BlendedPlacement

        predictor = tiny_predictor
        history = HistoryPlacement(
            training, tiny_pipeline.universe.traffic, replicas=3
        )
        with pytest.raises(PlacementError):
            BlendedPlacement(history, predictor, replicas=3, pseudo_count=0.0)

    def test_history_approaches_truth_with_data(self, tiny_pipeline):
        # With a large trace, history's top country for a popular video
        # matches ground truth's top country.
        universe = tiny_pipeline.universe
        video = tiny_pipeline.dataset.most_viewed_video()
        trace = WorkloadGenerator(universe, [video.video_id], seed=9).generate(
            3000
        )
        policy = HistoryPlacement(trace, universe.traffic, replicas=1)
        import numpy as np

        truth_top = universe.registry.codes()[
            int(np.argmax(universe.get(video.video_id).true_shares))
        ]
        assert list(policy.place(video)) == [truth_top]
