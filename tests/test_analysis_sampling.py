"""Tests for sample-bias quantification."""

import numpy as np
import pytest

from repro.analysis.sampling import (
    compare_sample_to_universe,
    tag_coverage_curve,
    views_ccdf,
)
from repro.api.service import YoutubeService
from repro.crawler.snowball import SnowballCrawler
from repro.datamodel.dataset import Dataset
from repro.errors import AnalysisError


class TestTagCoverageCurve:
    def test_monotone_nondecreasing(self, tiny_dataset):
        xs, ys = tag_coverage_curve(tiny_dataset, step=20)
        assert np.all(np.diff(ys) >= 0)
        assert np.all(np.diff(xs) > 0)

    def test_last_point_covers_everything(self, tiny_dataset):
        xs, ys = tag_coverage_curve(tiny_dataset, step=20)
        assert xs[-1] == len(tiny_dataset)
        all_tags = set()
        for video in tiny_dataset:
            all_tags.update(video.tags)
        assert ys[-1] == len(all_tags)

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            tag_coverage_curve(Dataset())

    def test_bad_step_rejected(self, tiny_dataset):
        with pytest.raises(AnalysisError):
            tag_coverage_curve(tiny_dataset, step=0)


class TestViewsCCDF:
    def test_probabilities_decrease(self):
        values, probabilities = views_ccdf([1, 5, 10, 100, 1000])
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(probabilities) <= 0)
        assert probabilities[0] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            views_ccdf([])


class TestSampleBias:
    def test_full_sample_is_unbiased(self, tiny_universe):
        full = tiny_universe.to_dataset()
        report = compare_sample_to_universe(tiny_universe, full)
        assert report.mean_views_ratio == pytest.approx(1.0)
        assert report.tag_coverage == pytest.approx(1.0)
        assert report.geographic_tv == pytest.approx(0.0, abs=1e-12)

    def test_snowball_is_popularity_biased(self, tiny_universe):
        partial = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=80
        ).run().dataset
        report = compare_sample_to_universe(tiny_universe, partial)
        assert report.mean_views_ratio > 1.0
        assert 0.0 < report.tag_coverage < 1.0
        assert report.geographic_tv > 0.0

    def test_kind_coverage_reported(self, tiny_universe):
        partial = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=150
        ).run().dataset
        report = compare_sample_to_universe(tiny_universe, partial)
        assert "global" in report.kind_coverage
        for fraction in report.kind_coverage.values():
            assert 0.0 <= fraction <= 1.0
        # Global tags are common, so their coverage beats niche kinds'.
        assert report.kind_coverage["global"] >= max(
            fraction
            for kind, fraction in report.kind_coverage.items()
            if kind != "global"
        ) - 1e-9

    def test_rows_render(self, tiny_universe):
        report = compare_sample_to_universe(
            tiny_universe, tiny_universe.to_dataset()
        )
        labels = [label for label, _ in report.as_rows()]
        assert "mean-views bias ratio" in labels

    def test_empty_sample_rejected(self, tiny_universe):
        with pytest.raises(AnalysisError):
            compare_sample_to_universe(tiny_universe, Dataset())
