"""Tests for adaptive replica allocation."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.placement.replication import AdaptiveTagPlacement


@pytest.fixture(scope="module")
def predictor(tiny_predictor):
    """Alias for the shared session-scoped predictor."""
    return tiny_predictor


class TestAdaptivePlacement:
    def test_replica_counts_vary_with_geography(
        self, predictor, tiny_pipeline
    ):
        policy = AdaptiveTagPlacement(predictor, coverage=0.6)
        counts = [
            policy.replica_count(video) for video in tiny_pipeline.dataset
        ]
        assert min(counts) >= 1
        assert max(counts) > min(counts), "adaptive must differentiate videos"

    def test_local_videos_get_fewer_replicas(self, predictor, tiny_pipeline):
        # Correlate replica count with the predicted distribution's
        # concentration: concentrated predictions need fewer countries.
        from repro.analysis.metrics import top_k_share

        policy = AdaptiveTagPlacement(predictor, coverage=0.6)
        concentrated_counts = []
        spread_counts = []
        for video in tiny_pipeline.dataset:
            shares = predictor.predict_shares(video)
            count = policy.replica_count(video)
            if top_k_share(shares, 1) > 0.5:
                concentrated_counts.append(count)
            elif top_k_share(shares, 1) < 0.15:
                spread_counts.append(count)
        if concentrated_counts and spread_counts:
            assert np.mean(concentrated_counts) < np.mean(spread_counts)

    def test_coverage_reached_or_capped(self, predictor, tiny_pipeline):
        policy = AdaptiveTagPlacement(predictor, coverage=0.7, max_replicas=20)
        codes = predictor.registry.codes()
        for video in list(tiny_pipeline.dataset)[:40]:
            placement = policy.place(video)
            shares = predictor.predict_shares(video)
            covered = sum(shares[codes.index(code)] for code in placement)
            assert covered >= 0.7 or len(placement) == 20

    def test_higher_coverage_more_replicas(self, predictor, tiny_pipeline):
        lean = AdaptiveTagPlacement(predictor, coverage=0.4)
        rich = AdaptiveTagPlacement(predictor, coverage=0.9, max_replicas=40)
        lean_total = sum(
            lean.replica_count(video) for video in tiny_pipeline.dataset
        )
        rich_total = sum(
            rich.replica_count(video) for video in tiny_pipeline.dataset
        )
        assert rich_total > lean_total

    def test_max_replicas_cap(self, predictor, tiny_pipeline):
        policy = AdaptiveTagPlacement(predictor, coverage=1.0, max_replicas=3)
        for video in list(tiny_pipeline.dataset)[:20]:
            assert len(policy.place(video)) <= 3

    def test_scores_are_expected_views(self, predictor, tiny_pipeline):
        policy = AdaptiveTagPlacement(predictor, coverage=0.5)
        video = next(iter(tiny_pipeline.dataset))
        placement = policy.place(video)
        shares = predictor.predict_shares(video)
        codes = predictor.registry.codes()
        for country, score in placement.items():
            assert score == pytest.approx(
                shares[codes.index(country)] * video.views
            )

    def test_invalid_params_rejected(self, predictor):
        with pytest.raises(PlacementError):
            AdaptiveTagPlacement(predictor, coverage=0.0)
        with pytest.raises(PlacementError):
            AdaptiveTagPlacement(predictor, coverage=1.5)
        with pytest.raises(PlacementError):
            AdaptiveTagPlacement(predictor, max_replicas=0)
