"""Unit and property tests for the traffic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficModelError, UnknownCountryError
from repro.world.countries import default_registry
from repro.world.traffic import TrafficModel, default_traffic_model


class TestDefaultTrafficModel:
    def test_shares_sum_to_one(self, traffic):
        assert traffic.as_vector().sum() == pytest.approx(1.0)

    def test_all_shares_strictly_positive(self, traffic):
        assert np.all(traffic.as_vector() > 0)

    def test_us_is_largest_market(self, traffic):
        shares = traffic.as_dict()
        assert max(shares, key=shares.get) == "US"

    def test_china_share_is_negligible(self, traffic):
        # YouTube was blocked in China in 2011.
        assert traffic.share("CN") < 0.01

    def test_us_dwarfs_singapore(self, traffic):
        # The denominator of the paper's Fig. 1 saturation argument.
        assert traffic.share("US") > 20 * traffic.share("SG")

    def test_share_unknown_country_raises(self, traffic):
        with pytest.raises(UnknownCountryError):
            traffic.share("XX")

    def test_as_dict_matches_vector(self, traffic, registry):
        vector = traffic.as_vector()
        shares = traffic.as_dict()
        for i, code in enumerate(registry.codes()):
            assert shares[code] == pytest.approx(vector[i])

    def test_as_vector_returns_copy(self, traffic):
        vector = traffic.as_vector()
        vector[0] = 99.0
        assert traffic.as_vector()[0] != 99.0


class TestConstructionValidation:
    def test_missing_country_rejected(self, registry):
        shares = {code: 1.0 for code in registry.codes()[:-1]}
        with pytest.raises(TrafficModelError):
            TrafficModel(shares, registry)

    def test_unknown_extra_country_rejected(self, registry):
        shares = {code: 1.0 for code in registry.codes()}
        shares["XX"] = 1.0
        with pytest.raises(TrafficModelError):
            TrafficModel(shares, registry)

    def test_zero_share_rejected(self, registry):
        shares = {code: 1.0 for code in registry.codes()}
        shares[registry.codes()[0]] = 0.0
        with pytest.raises(TrafficModelError):
            TrafficModel(shares, registry)

    def test_negative_share_rejected(self, registry):
        shares = {code: 1.0 for code in registry.codes()}
        shares[registry.codes()[0]] = -0.1
        with pytest.raises(TrafficModelError):
            TrafficModel(shares, registry)

    def test_nan_share_rejected(self, registry):
        shares = {code: 1.0 for code in registry.codes()}
        shares[registry.codes()[0]] = float("nan")
        with pytest.raises(TrafficModelError):
            TrafficModel(shares, registry)

    def test_unnormalized_input_is_normalized(self, registry):
        shares = {code: 2.0 for code in registry.codes()}
        model = TrafficModel(shares, registry)
        assert model.as_vector().sum() == pytest.approx(1.0)


class TestPerturbed:
    def test_zero_error_is_identity(self, traffic):
        perturbed = traffic.perturbed(0.0)
        assert np.allclose(perturbed.as_vector(), traffic.as_vector())

    def test_perturbed_still_a_distribution(self, traffic):
        perturbed = traffic.perturbed(0.2, seed=3)
        vector = perturbed.as_vector()
        assert vector.sum() == pytest.approx(1.0)
        assert np.all(vector > 0)

    def test_perturbation_deterministic_in_seed(self, traffic):
        a = traffic.perturbed(0.1, seed=5).as_vector()
        b = traffic.perturbed(0.1, seed=5).as_vector()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, traffic):
        a = traffic.perturbed(0.1, seed=5).as_vector()
        b = traffic.perturbed(0.1, seed=6).as_vector()
        assert not np.array_equal(a, b)

    def test_negative_error_rejected(self, traffic):
        with pytest.raises(TrafficModelError):
            traffic.perturbed(-0.1)

    @settings(max_examples=20, deadline=None)
    @given(error=st.floats(min_value=0.01, max_value=1.0))
    def test_perturbed_always_valid_distribution(self, error):
        traffic = default_traffic_model()
        perturbed = traffic.perturbed(error, seed=11)
        vector = perturbed.as_vector()
        assert vector.sum() == pytest.approx(1.0)
        assert np.all(vector > 0)


class TestRestricted:
    def test_restricted_renormalizes(self, traffic):
        sub = traffic.restricted(["US", "BR", "JP"])
        assert sub.as_vector().sum() == pytest.approx(1.0)
        assert len(sub) == 3

    def test_restricted_preserves_ratios(self, traffic):
        sub = traffic.restricted(["US", "BR"])
        original_ratio = traffic.share("US") / traffic.share("BR")
        new_ratio = sub.share("US") / sub.share("BR")
        assert new_ratio == pytest.approx(original_ratio)
