"""Unit tests for the snowball crawler."""

import pytest

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import YoutubeService
from repro.crawler.snowball import SnowballCrawler
from repro.errors import ConfigError


class TestBasicCrawl:
    def test_respects_video_budget(self, tiny_universe):
        crawler = SnowballCrawler(YoutubeService(tiny_universe), max_videos=50)
        result = crawler.run()
        assert len(result.dataset) == 50
        assert result.stats.stopped_by_budget

    def test_seeds_come_from_most_popular_feeds(self, tiny_universe):
        crawler = SnowballCrawler(
            YoutubeService(tiny_universe),
            seed_countries=["BR"],
            seeds_per_country=5,
            max_videos=5,
        )
        result = crawler.run()
        assert set(result.dataset.video_ids()) == set(
            tiny_universe.most_popular("BR", 5)
        )

    def test_no_duplicates_crawled(self, tiny_universe):
        result = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=200
        ).run()
        ids = result.dataset.video_ids()
        assert len(ids) == len(set(ids))

    def test_bfs_depth_tracking(self, tiny_universe):
        result = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=150
        ).run()
        depths = result.stats.fetched_by_depth
        assert 0 in depths
        assert result.stats.max_depth_reached >= 1
        # Depth counts sum to fetched.
        assert sum(depths.values()) == result.stats.fetched

    def test_max_depth_zero_stops_at_seeds(self, tiny_universe):
        crawler = SnowballCrawler(
            YoutubeService(tiny_universe),
            seeds_per_country=10,
            max_videos=1000,
            max_depth=0,
        )
        result = crawler.run()
        assert result.stats.max_depth_reached == 0
        # Only seeded videos; no expansion.
        assert len(result.dataset) <= 25 * 10

    def test_popularity_decoded_from_chart_urls(self, tiny_universe):
        result = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=60
        ).run()
        decoded = 0
        for video in result.dataset:
            synth = tiny_universe.get(video.video_id)
            if synth.popularity is not None and not synth.popularity.is_empty():
                assert video.popularity == synth.popularity
                decoded += 1
            else:
                assert video.popularity is None
        assert decoded > 0
        assert result.stats.map_decode_failures == 0

    def test_deterministic_given_same_universe(self, tiny_universe):
        a = SnowballCrawler(YoutubeService(tiny_universe), max_videos=80).run()
        b = SnowballCrawler(YoutubeService(tiny_universe), max_videos=80).run()
        assert a.dataset.video_ids() == b.dataset.video_ids()


class TestFaultTolerance:
    def test_crawl_completes_under_faults(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.15, seed=5)
        )
        result = SnowballCrawler(service, max_videos=100, max_retries=5).run()
        assert len(result.dataset) == 100
        assert result.stats.transient_errors > 0
        assert result.stats.backoff_seconds > 0

    def test_retries_exhausted_skips_item(self, tiny_universe):
        # With rate ~1 every request fails; the crawl gives up on seeds
        # and finishes empty instead of hanging.
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.999_999, seed=5)
        )
        result = SnowballCrawler(service, max_videos=10, max_retries=2).run()
        assert len(result.dataset) == 0
        assert result.stats.retries_exhausted > 0

    def test_backoff_grows_exponentially(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.999_999, seed=5)
        )
        crawler = SnowballCrawler(
            service, max_videos=10, max_retries=3, backoff_base=1.0,
            seed_countries=["US"],
        )
        crawler.run()
        # One seed request: 3 retries → sleeps 1 + 2 + 4 = 7 per item;
        # seeding tries once (one request item).
        assert crawler.stats.backoff_seconds == pytest.approx(7.0)


class TestQuota:
    def test_quota_exhaustion_stops_cleanly(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=120))
        result = SnowballCrawler(service, max_videos=10_000).run()
        assert result.stats.stopped_by_quota
        assert 0 < len(result.dataset) < 10_000

    def test_quota_during_seeding_stops_cleanly(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=5))
        result = SnowballCrawler(service, max_videos=100).run()
        assert result.stats.stopped_by_quota


class TestConfigValidation:
    def test_invalid_configs_rejected(self, tiny_universe):
        service = YoutubeService(tiny_universe)
        with pytest.raises(ConfigError):
            SnowballCrawler(service, max_videos=0)
        with pytest.raises(ConfigError):
            SnowballCrawler(service, seeds_per_country=0)
        with pytest.raises(ConfigError):
            SnowballCrawler(service, max_depth=-1)
        with pytest.raises(ConfigError):
            SnowballCrawler(service, max_retries=-1)
        with pytest.raises(ConfigError):
            SnowballCrawler(service, backoff_base=-0.5)
