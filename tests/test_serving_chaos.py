"""Chaos tests: kill k of N replicas mid-workload, keep serving.

The service's resilience claim, stated as invariants:

- **zero failed requests** — the origin always answers, so replica
  outages degrade distance/latency, never availability;
- **bounded degradation** — tail serving distance under chaos stays
  within a constant factor of the clean run (failed edges reroute to
  peers or origin, not into the void);
- **full recovery** — after replicas come back, caches (which survive
  the outage) keep serving, and breakers close again in virtual time.

Everything runs on the virtual-time loop: the same schedule against
the same trace is bit-for-bit the same experiment.
"""

import pytest

from repro.serving import ChaosSchedule, EdgeCluster, run_virtual

MARKETS = ["US", "BR", "JP", "DE", "IN", "GB"]
N_REQUESTS = 6000
CAPACITY = 24
CONCURRENCY = 16


@pytest.fixture(scope="module")
def registry(tiny_pipeline):
    return tiny_pipeline.tag_table.registry


@pytest.fixture(scope="module")
def chaos_trace(tiny_trace):
    return tiny_trace(N_REQUESTS, seed=424)


def _serve(tiny_pipeline, registry, trace, chaos=None):
    cluster = EdgeCluster(
        tiny_pipeline.dataset, registry, MARKETS, capacity=CAPACITY
    )
    report = run_virtual(
        cluster.serve_trace(trace, concurrency=CONCURRENCY, chaos=chaos)
    )
    return cluster, report


class TestKillKOfN:
    def test_zero_failed_requests_under_chaos(
        self, tiny_pipeline, registry, chaos_trace
    ):
        chaos = ChaosSchedule.kill(
            ["edge-BR", "edge-JP", "edge-IN"],
            at_request=N_REQUESTS // 3,
            recover_at=2 * N_REQUESTS // 3,
        )
        _, report = _serve(tiny_pipeline, registry, chaos_trace, chaos)
        assert report.failed == 0
        assert report.requests == N_REQUESTS
        assert (
            report.local_hits + report.remote_hits + report.origin_fetches
            == N_REQUESTS
        )

    def test_p99_degradation_is_bounded(
        self, tiny_pipeline, registry, chaos_trace
    ):
        _, clean = _serve(tiny_pipeline, registry, chaos_trace)
        chaos = ChaosSchedule.kill(
            ["edge-BR", "edge-JP", "edge-IN"],
            at_request=N_REQUESTS // 3,
            recover_at=2 * N_REQUESTS // 3,
        )
        _, degraded = _serve(tiny_pipeline, registry, chaos_trace, chaos)
        # Outage reroutes cost distance, but boundedly: requests fall
        # back to live peers or the origin, both at finite distance.
        assert degraded.failed == 0
        assert degraded.p99_km <= 2.0 * clean.p99_km + 1.0
        assert degraded.hit_ratio <= clean.hit_ratio

    def test_dead_replicas_reroute_and_recover(
        self, tiny_pipeline, registry, chaos_trace
    ):
        kill_at = N_REQUESTS // 3
        recover_at = 2 * N_REQUESTS // 3
        chaos = ChaosSchedule.kill(
            ["edge-BR", "edge-JP"], at_request=kill_at, recover_at=recover_at
        )
        cluster, report = _serve(tiny_pipeline, registry, chaos_trace, chaos)
        assert report.failed == 0
        assert report.reroutes > 0
        assert chaos.exhausted
        for replica in cluster.replicas:
            assert replica.alive
        # Caches survive the outage: the revived replicas still hold
        # what they had admitted before the kill.
        assert len(cluster.replica("edge-BR").cache) > 0

    def test_killing_every_replica_still_serves(
        self, tiny_pipeline, registry, chaos_trace
    ):
        chaos = ChaosSchedule.kill(
            [f"edge-{c}" for c in MARKETS], at_request=N_REQUESTS // 2
        )
        _, report = _serve(tiny_pipeline, registry, chaos_trace, chaos)
        assert report.failed == 0
        # After the kill everything is an origin fetch.
        assert report.origin_fetches >= N_REQUESTS // 2

    def test_breakers_open_on_dead_replicas(
        self, tiny_pipeline, registry, chaos_trace
    ):
        chaos = ChaosSchedule.kill(
            ["edge-US"], at_request=N_REQUESTS // 4
        )
        cluster, report = _serve(tiny_pipeline, registry, chaos_trace, chaos)
        assert report.failed == 0
        # US is the biggest market: its breaker sees plenty of failures.
        assert report.breaker_opens > 0

    def test_chaos_run_is_deterministic(
        self, tiny_pipeline, registry, chaos_trace
    ):
        def once():
            chaos = ChaosSchedule.kill(
                ["edge-BR", "edge-DE"],
                at_request=N_REQUESTS // 4,
                recover_at=N_REQUESTS // 2,
            )
            _, report = _serve(tiny_pipeline, registry, chaos_trace, chaos)
            return report

        assert once() == once()
