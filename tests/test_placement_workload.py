"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.placement.workload import Request, WorkloadGenerator


class TestWorkloadGenerator:
    def test_trace_length(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=1).generate(500)
        assert len(trace) == 500

    def test_requests_reference_known_videos_and_countries(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=1).generate(200)
        for request in trace:
            assert request.video_id in tiny_universe
            assert request.country in tiny_universe.registry

    def test_deterministic_in_seed(self, tiny_universe):
        a = WorkloadGenerator(tiny_universe, seed=7).generate(100)
        b = WorkloadGenerator(tiny_universe, seed=7).generate(100)
        assert a.requests == b.requests

    def test_different_seeds_differ(self, tiny_universe):
        a = WorkloadGenerator(tiny_universe, seed=1).generate(100)
        b = WorkloadGenerator(tiny_universe, seed=2).generate(100)
        assert a.requests != b.requests

    def test_restriction_to_subset(self, tiny_universe):
        subset = tiny_universe.video_ids()[:10]
        trace = WorkloadGenerator(tiny_universe, subset, seed=1).generate(200)
        assert {request.video_id for request in trace} <= set(subset)

    def test_popular_videos_requested_more(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=3).generate(3000)
        counts = {}
        for request in trace:
            counts[request.video_id] = counts.get(request.video_id, 0) + 1
        most_requested = max(counts, key=counts.get)
        views = [tiny_universe.get(vid).views for vid in tiny_universe.video_ids()]
        # The most requested video must be well above median popularity.
        assert tiny_universe.get(most_requested).views > np.median(views)

    def test_country_mix_follows_true_shares(self, tiny_universe):
        # Requests for a single video should follow its true shares: the
        # top country of a heavily sampled video matches ground truth.
        video_id = max(
            tiny_universe.video_ids(), key=lambda v: tiny_universe.get(v).views
        )
        trace = WorkloadGenerator(tiny_universe, [video_id], seed=4).generate(3000)
        counts = trace.requests_by_country()
        top_requested = max(counts, key=counts.get)
        truth = tiny_universe.get(video_id).true_shares
        top_true = tiny_universe.registry.codes()[int(np.argmax(truth))]
        assert top_requested == top_true

    def test_zero_requests(self, tiny_universe):
        assert len(WorkloadGenerator(tiny_universe, seed=1).generate(0)) == 0

    def test_negative_requests_rejected(self, tiny_universe):
        with pytest.raises(ConfigError):
            WorkloadGenerator(tiny_universe, seed=1).generate(-1)

    def test_empty_video_set_rejected(self, tiny_universe):
        with pytest.raises(ConfigError):
            WorkloadGenerator(tiny_universe, video_ids=["AAAAAAAAAAA"], seed=1)

    def test_trace_helpers(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=5).generate(300)
        by_country = trace.requests_by_country()
        assert sum(by_country.values()) == 300
        assert sorted(by_country) == trace.countries()
