"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.placement.workload import Request, WorkloadGenerator


class TestWorkloadGenerator:
    def test_trace_length(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=1).generate(500)
        assert len(trace) == 500

    def test_requests_reference_known_videos_and_countries(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=1).generate(200)
        for request in trace:
            assert request.video_id in tiny_universe
            assert request.country in tiny_universe.registry

    def test_deterministic_in_seed(self, tiny_universe):
        a = WorkloadGenerator(tiny_universe, seed=7).generate(100)
        b = WorkloadGenerator(tiny_universe, seed=7).generate(100)
        assert a.requests == b.requests

    def test_different_seeds_differ(self, tiny_universe):
        a = WorkloadGenerator(tiny_universe, seed=1).generate(100)
        b = WorkloadGenerator(tiny_universe, seed=2).generate(100)
        assert a.requests != b.requests

    def test_restriction_to_subset(self, tiny_universe):
        subset = tiny_universe.video_ids()[:10]
        trace = WorkloadGenerator(tiny_universe, subset, seed=1).generate(200)
        assert {request.video_id for request in trace} <= set(subset)

    def test_popular_videos_requested_more(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=3).generate(3000)
        counts = {}
        for request in trace:
            counts[request.video_id] = counts.get(request.video_id, 0) + 1
        most_requested = max(counts, key=counts.get)
        views = [tiny_universe.get(vid).views for vid in tiny_universe.video_ids()]
        # The most requested video must be well above median popularity.
        assert tiny_universe.get(most_requested).views > np.median(views)

    def test_country_mix_follows_true_shares(self, tiny_universe):
        # Requests for a single video should follow its true shares: the
        # top country of a heavily sampled video matches ground truth.
        video_id = max(
            tiny_universe.video_ids(), key=lambda v: tiny_universe.get(v).views
        )
        trace = WorkloadGenerator(tiny_universe, [video_id], seed=4).generate(3000)
        counts = trace.requests_by_country()
        top_requested = max(counts, key=counts.get)
        truth = tiny_universe.get(video_id).true_shares
        top_true = tiny_universe.registry.codes()[int(np.argmax(truth))]
        assert top_requested == top_true

    def test_zero_requests(self, tiny_universe):
        assert len(WorkloadGenerator(tiny_universe, seed=1).generate(0)) == 0

    def test_negative_requests_rejected(self, tiny_universe):
        with pytest.raises(ConfigError):
            WorkloadGenerator(tiny_universe, seed=1).generate(-1)

    def test_empty_video_set_rejected(self, tiny_universe):
        with pytest.raises(ConfigError):
            WorkloadGenerator(tiny_universe, video_ids=["AAAAAAAAAAA"], seed=1)

    def test_trace_helpers(self, tiny_universe):
        trace = WorkloadGenerator(tiny_universe, seed=5).generate(300)
        by_country = trace.requests_by_country()
        assert sum(by_country.values()) == 300
        assert sorted(by_country) == trace.countries()


class TestIterRequests:
    """The streaming (vectorized, chunked) request path."""

    def test_streams_exactly_n(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=5)
        assert sum(1 for _ in generator.iter_requests(1000)) == 1000
        assert list(generator.iter_requests(0)) == []

    def test_deterministic_per_stream(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=5)
        a = list(generator.iter_requests(500, stream=1))
        b = list(generator.iter_requests(500, stream=1))
        assert a == b

    def test_streams_are_independent(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=5)
        a = list(generator.iter_requests(500, stream=0))
        b = list(generator.iter_requests(500, stream=1))
        assert a != b

    def test_chunk_size_does_not_change_the_draw(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=5)
        # NB: chunked RNG consumption differs per chunking, so only the
        # marginal distribution is chunk-invariant — but a single chunk
        # covering everything must equal the same draw split at the
        # boundary of the chunked path's own size.
        whole = list(generator.iter_requests(300, chunk_size=300))
        same = list(generator.iter_requests(300, chunk_size=300))
        assert whole == same

    def test_requests_reference_known_ids(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=6)
        known_videos = set(tiny_universe.video_ids())
        known_countries = set(tiny_universe.registry.codes())
        for request in generator.iter_requests(2000):
            assert request.video_id in known_videos
            assert request.country in known_countries

    def test_distribution_matches_generate(self, tiny_universe):
        from collections import Counter

        generator = WorkloadGenerator(tiny_universe, seed=7)
        streamed = Counter(
            r.country for r in generator.iter_requests(20_000)
        )
        traced = Counter(r.country for r in generator.generate(20_000))
        total = 20_000
        for code in set(streamed) | set(traced):
            assert abs(streamed[code] - traced[code]) / total < 0.02

    def test_validation(self, tiny_universe):
        generator = WorkloadGenerator(tiny_universe, seed=5)
        with pytest.raises(ConfigError):
            list(generator.iter_requests(-1))
        with pytest.raises(ConfigError):
            list(generator.iter_requests(10, chunk_size=0))
