"""Tests for universe summary statistics."""

import pytest

from repro.synth.stats import summarize_universe


class TestSummarizeUniverse:
    @pytest.fixture(scope="class")
    def stats(self, tiny_universe):
        return summarize_universe(tiny_universe)

    def test_counts_match_universe(self, stats, tiny_universe):
        assert stats.videos == len(tiny_universe)
        assert stats.tags == len(tiny_universe.vocabulary)
        assert stats.total_views == sum(
            video.views for video in tiny_universe.videos()
        )

    def test_view_quantiles_ordered(self, stats):
        assert 0 < stats.median_views < stats.p99_views

    def test_fractions_match_config(self, stats, tiny_universe):
        config = tiny_universe.config
        assert stats.untagged_fraction < 3 * config.p_no_tags + 0.02
        assert abs(stats.missing_map_fraction - config.p_missing_map) < 0.1

    def test_tag_kind_counts_sum_to_vocabulary(self, stats):
        assert sum(stats.tag_kind_counts.values()) == stats.tags

    def test_mean_out_degree_close_to_config(self, stats, tiny_universe):
        assert (
            abs(stats.mean_out_degree - tiny_universe.config.related_count)
            < 2.0
        )

    def test_rows_render(self, stats):
        labels = [label for label, _ in stats.as_rows()]
        assert "videos" in labels
        assert "global tags" in labels
