"""Tests for country centroids and distances."""

import numpy as np
import pytest

from repro.errors import UnknownCountryError
from repro.world.geo import (
    COUNTRY_CENTROIDS,
    centroid,
    country_distance_km,
    distance_matrix,
    haversine_km,
)


class TestCentroids:
    def test_every_registry_country_has_centroid(self, registry):
        for code in registry.codes():
            lat, lon = centroid(code)
            assert -90 <= lat <= 90
            assert -180 <= lon <= 180

    def test_no_orphan_centroids(self, registry):
        assert set(COUNTRY_CENTROIDS) == set(registry.codes())

    def test_unknown_country_rejected(self):
        with pytest.raises(UnknownCountryError):
            centroid("XX")


class TestHaversine:
    def test_zero_distance_same_point(self):
        assert haversine_km((10.0, 20.0), (10.0, 20.0)) == pytest.approx(0.0)

    def test_known_distance_london_newyork(self):
        london = (51.5, -0.1)
        new_york = (40.7, -74.0)
        assert haversine_km(london, new_york) == pytest.approx(5570, rel=0.02)

    def test_antipodal_is_half_circumference(self):
        assert haversine_km((0.0, 0.0), (0.0, 180.0)) == pytest.approx(
            np.pi * 6371, rel=0.001
        )

    def test_symmetry(self):
        a, b = (12.3, 45.6), (-33.9, 151.2)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestCountryDistances:
    def test_same_country_zero(self):
        assert country_distance_km("BR", "BR") == 0.0

    def test_neighbours_closer_than_antipodes(self):
        assert country_distance_km("PT", "ES") < country_distance_km("PT", "NZ")

    def test_plausible_us_brazil(self):
        assert 6000 < country_distance_km("US", "BR") < 9000

    def test_matrix_properties(self, registry):
        matrix = distance_matrix(registry)
        n = len(registry)
        assert matrix.shape == (n, n)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        off_diagonal = matrix[~np.eye(n, dtype=bool)]
        assert np.all(off_diagonal > 0)
        assert off_diagonal.max() < 20_100  # half Earth circumference

    def test_matrix_matches_pairwise(self, registry):
        matrix = distance_matrix(registry)
        i = registry.index_of("US")
        j = registry.index_of("SG")
        assert matrix[i][j] == pytest.approx(country_distance_km("US", "SG"))
