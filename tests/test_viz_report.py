"""Unit tests for composed text reports."""

import pytest

from repro.viz.report import (
    format_table,
    funnel_report,
    stats_report,
    tag_map_report,
    video_map_report,
)


class TestFormatTable:
    def test_alignment_and_thousands(self):
        output = format_table([("views", 1234567), ("tag", "pop")])
        assert "1,234,567" in output
        assert "pop" in output

    def test_title_underlined(self):
        output = format_table([("a", 1)], title="Header")
        lines = output.splitlines()
        assert lines[0] == "Header"
        assert lines[1] == "-" * len("Header")

    def test_empty_rows(self):
        assert format_table([], title="T") == "T"


class TestComposedReports:
    def test_video_map_report(self, tiny_pipeline):
        video = tiny_pipeline.dataset.most_viewed_video()
        shares = tiny_pipeline.reconstructor.shares_for_video(video)
        output = video_map_report(video, shares, tiny_pipeline.reconstructor.registry)
        assert video.title in output
        assert "top countries" in output
        assert "legend" in output

    def test_video_map_mentions_saturated_countries(self, tiny_pipeline):
        video = tiny_pipeline.dataset.most_viewed_video()
        shares = tiny_pipeline.reconstructor.shares_for_video(video)
        output = video_map_report(video, shares, tiny_pipeline.reconstructor.registry)
        assert "peak intensity" in output

    def test_tag_map_report(self, tiny_pipeline):
        table = tiny_pipeline.tag_table
        tag = table.top_tags_by_views(1)[0][0]
        output = tag_map_report(
            tag,
            table.shares_for(tag),
            tiny_pipeline.universe.traffic,
            video_count=table.video_count(tag),
            total_views=table.total_views(tag),
        )
        assert f"tag {tag!r}" in output
        assert "JSD to traffic prior" in output
        assert "top country" in output

    def test_funnel_report(self, tiny_pipeline):
        output = funnel_report(tiny_pipeline.filter_report)
        assert "retention rate" in output
        assert "removed: no tags" in output

    def test_stats_report(self, tiny_pipeline):
        output = stats_report(tiny_pipeline.dataset.stats())
        assert "unique tags" in output
        assert "total views" in output
