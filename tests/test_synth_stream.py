"""Unit tests for the chunk-streaming universe generator.

The contracts that make :mod:`repro.synth.stream` usable for scaling
curves and out-of-core builds:

- **determinism** — the corpus is a pure function of the config seed;
- **chunk-size invariance** — ``iter_chunks(chunk_rows=k)`` yields the
  same corpus for every ``k``; chunking is presentation, not sampling;
- **prefix property** — ``limit=N`` is literally the first ``N`` videos
  of any larger run, so a 100k scaling point is a prefix of the 1M one;
- **funnel statistics** — the missing-map and no-tag fractions track the
  config probabilities the object-path generator uses;
- **well-formedness** — unique ids, deduplicated per-video tags, valid
  interop ``Video`` objects.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.stream import (
    GEN_BLOCK,
    StreamingUniverse,
    StreamVocabulary,
    chunk_to_videos,
)
from repro.synth.tagmodel import CURATED_TAGS
from repro.synth.universe import UniverseConfig
from repro.world.countries import default_registry


def _config(n_videos=5_000, n_tags=400, seed=2011, **overrides):
    return UniverseConfig(
        n_videos=n_videos, n_tags=n_tags, seed=seed, **overrides
    )


def _concat(chunks):
    """Flatten a chunk stream into one comparable tuple of arrays."""
    chunks = list(chunks)
    indptr = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for chunk in chunks:
        indptr.append(chunk.tag_indptr[1:] + offset)
        offset += chunk.tag_indptr[-1]
    return (
        np.concatenate([c.video_ids for c in chunks]),
        np.concatenate([c.views for c in chunks]),
        np.concatenate([c.pop for c in chunks]),
        np.concatenate([c.has_map for c in chunks]),
        np.concatenate(indptr),
        np.concatenate([c.tag_ids for c in chunks]),
    )


def _assert_same_corpus(a, b):
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left, right)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpus(registry):
    """One reference corpus, generated at the default chunking."""
    uni = StreamingUniverse(_config(), registry=registry)
    return _concat(uni.iter_chunks())


class TestDeterminismAndChunking:
    def test_same_seed_same_corpus(self, registry, corpus):
        again = StreamingUniverse(_config(), registry=registry)
        _assert_same_corpus(corpus, _concat(again.iter_chunks()))

    def test_different_seed_different_corpus(self, registry, corpus):
        other = StreamingUniverse(_config(seed=77), registry=registry)
        views = _concat(other.iter_chunks())[1]
        assert not np.array_equal(views, corpus[1])

    @pytest.mark.parametrize("chunk_rows", [1, 997, GEN_BLOCK + 13])
    def test_chunk_size_never_changes_the_corpus(
        self, registry, corpus, chunk_rows
    ):
        uni = StreamingUniverse(_config(), registry=registry)
        chunks = list(uni.iter_chunks(chunk_rows=chunk_rows))
        assert all(len(c) == chunk_rows for c in chunks[:-1])
        _assert_same_corpus(corpus, _concat(chunks))

    def test_limit_is_a_prefix(self, registry, corpus):
        uni = StreamingUniverse(_config(), registry=registry)
        prefix = _concat(uni.iter_chunks(chunk_rows=512, limit=1_234))
        assert len(prefix[0]) == 1_234
        np.testing.assert_array_equal(prefix[0], corpus[0][:1_234])
        np.testing.assert_array_equal(prefix[2], corpus[2][:1_234])
        nnz = prefix[4][-1]
        np.testing.assert_array_equal(prefix[5], corpus[5][:nnz])


class TestCorpusShape:
    def test_video_ids_unique_and_wellformed(self, corpus):
        ids = corpus[0]
        assert len(np.unique(ids)) == len(ids)
        assert all(len(str(v)) == 11 for v in ids[:100])

    def test_funnel_fractions_track_config(self, corpus):
        config = _config()
        has_map, indptr = corpus[3], corpus[4]
        assert np.mean(has_map) == pytest.approx(
            1.0 - config.p_missing_map, abs=0.03
        )
        untagged = np.mean(np.diff(indptr) == 0)
        assert untagged == pytest.approx(config.p_no_tags, abs=0.01)

    def test_missing_map_rows_are_zero(self, corpus):
        pop, has_map = corpus[2], corpus[3]
        assert not pop[~has_map].any()
        # Every retrieved map peaks at the paper's intensity ceiling.
        assert pop[has_map].max(axis=1).min() == 61

    def test_tags_distinct_within_each_video(self, corpus):
        indptr, tag_ids = corpus[4], corpus[5]
        for row in range(200):
            tags = tag_ids[indptr[row] : indptr[row + 1]]
            assert len(np.unique(tags)) == len(tags)

    def test_views_positive(self, corpus):
        assert corpus[1].min() >= 1


class TestVocabulary:
    def test_names_unique_and_curated_head_present(self, registry):
        vocab = StreamVocabulary(_config(), registry, None)
        names = vocab.names
        assert len(set(names.tolist())) == len(names)
        curated = {entry[0] for entry in CURATED_TAGS}
        assert curated <= set(names.tolist())

    def test_too_few_tags_rejected(self, registry):
        with pytest.raises(ConfigError):
            StreamVocabulary(
                _config(n_tags=len(CURATED_TAGS) - 1), registry, None
            )


class TestInterop:
    def test_chunk_to_videos_roundtrips_arrays(self, registry):
        uni = StreamingUniverse(_config(n_videos=300), registry=registry)
        (chunk,) = list(uni.iter_chunks(chunk_rows=300))
        videos = chunk_to_videos(chunk, uni.tag_names, registry)
        assert len(videos) == 300
        for row in (0, 17, 299):
            video = videos[row]
            assert video.video_id == str(chunk.video_ids[row])
            assert video.views == int(chunk.views[row])
            assert video.has_valid_popularity() == (
                bool(chunk.has_map[row]) and chunk.pop[row].any()
            )
            tags = chunk.tag_ids[
                chunk.tag_indptr[row] : chunk.tag_indptr[row + 1]
            ]
            assert video.tags == tuple(
                str(uni.tag_names[t]) for t in tags
            )
