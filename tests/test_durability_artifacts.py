"""Tests for atomic artifact writes and checksum sidecars."""

import json

import pytest

from repro.durability import artifacts
from repro.durability.fsfaults import FaultyFilesystem
from repro.errors import ArtifactError, ArtifactIntegrityError


class TestAtomicWrite:
    def test_roundtrip_with_sidecar(self, tmp_path):
        path = tmp_path / "data.json"
        artifacts.atomic_write_text(path, '{"x": 1}', checksum=True)
        assert path.read_text(encoding="utf-8") == '{"x": 1}'
        assert artifacts.has_checksum(path)
        artifacts.verify_artifact(path)  # must not raise

    def test_no_tmp_left_behind(self, tmp_path):
        artifacts.atomic_write_bytes(tmp_path / "a.bin", b"abc")
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]

    def test_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "data.json"
        artifacts.atomic_write_text(path, "old", checksum=True)
        artifacts.atomic_write_text(path, "new", checksum=True)
        assert path.read_text(encoding="utf-8") == "new"
        artifacts.verify_artifact(path)

    def test_failed_write_preserves_previous_and_unlinks_tmp(self, tmp_path):
        path = tmp_path / "data.json"
        artifacts.atomic_write_text(path, "precious", checksum=True)
        fs = FaultyFilesystem(seed=0, crash_at_op=None, fault_rate=0.0)
        # Force every write to fail with ENOSPC.
        enospc = FaultyFilesystem(seed=0, fault_rate=0.99, kinds=("enospc",))
        with pytest.raises(ArtifactError):
            artifacts.atomic_write_text(path, "lost", fs=enospc, checksum=True)
        assert path.read_text(encoding="utf-8") == "precious"
        assert not list(tmp_path.glob("*.tmp"))
        artifacts.verify_artifact(path, fs=fs)  # old sidecar still matches

    def test_persist_file_checksums_streamed_output(self, tmp_path):
        path = tmp_path / "streamed.jsonl"
        path.write_text("line1\nline2\n", encoding="utf-8")
        artifacts.persist_file(path)
        artifacts.verify_artifact(path)


class TestVerification:
    def _artifact(self, tmp_path, content=b"payload-bytes"):
        path = tmp_path / "art.bin"
        artifacts.atomic_write_bytes(path, content, checksum=True)
        return path

    def test_missing_artifact_is_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError):
            artifacts.verify_artifact(tmp_path / "ghost.bin")

    def test_missing_sidecar_is_integrity_error(self, tmp_path):
        path = tmp_path / "bare.bin"
        path.write_bytes(b"data")
        with pytest.raises(ArtifactIntegrityError):
            artifacts.verify_artifact(path)

    def test_bit_flip_detected(self, tmp_path):
        path = self._artifact(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[3] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactIntegrityError, match="digest mismatch"):
            artifacts.verify_artifact(path)

    def test_truncation_detected(self, tmp_path):
        path = self._artifact(tmp_path)
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(ArtifactIntegrityError, match="truncated"):
            artifacts.verify_artifact(path)

    def test_malformed_sidecar_detected(self, tmp_path):
        path = self._artifact(tmp_path)
        artifacts.checksum_path(path).write_text("{]", encoding="utf-8")
        with pytest.raises(ArtifactIntegrityError):
            artifacts.verify_artifact(path)

    def test_sidecar_is_json_with_algorithm(self, tmp_path):
        path = self._artifact(tmp_path)
        sidecar = json.loads(
            artifacts.checksum_path(path).read_text(encoding="utf-8")
        )
        assert sidecar["algorithm"] == "sha256"
        assert sidecar["size"] == len(b"payload-bytes")


class TestArtifactStream:
    def test_streamed_write_equals_atomic_write(self, tmp_path):
        path = tmp_path / "streamed.bin"
        stream = artifacts.ArtifactStream(path)
        stream.write(b"part one, ")
        stream.write(b"part two")
        stream.commit()
        assert path.read_bytes() == b"part one, part two"
        artifacts.verify_artifact(path)  # sidecar from the rolling hash

    def test_nothing_visible_before_commit(self, tmp_path):
        path = tmp_path / "pending.bin"
        stream = artifacts.ArtifactStream(path)
        stream.write(b"half-written")
        assert not path.exists()
        stream.commit()
        assert path.exists()

    def test_abort_discards_temp_and_keeps_previous(self, tmp_path):
        path = tmp_path / "data.bin"
        artifacts.atomic_write_bytes(path, b"precious", checksum=True)
        stream = artifacts.ArtifactStream(path)
        stream.write(b"doomed")
        stream.abort()
        assert path.read_bytes() == b"precious"
        assert not list(tmp_path.glob("*.tmp"))
        artifacts.verify_artifact(path)

    def test_double_commit_rejected(self, tmp_path):
        stream = artifacts.ArtifactStream(tmp_path / "once.bin")
        stream.write(b"x")
        stream.commit()
        with pytest.raises(ArtifactError):
            stream.commit()

    def test_write_after_commit_rejected(self, tmp_path):
        stream = artifacts.ArtifactStream(tmp_path / "done.bin")
        stream.commit()
        with pytest.raises(ArtifactError):
            stream.write(b"late")

    def test_empty_stream_commits_empty_artifact(self, tmp_path):
        path = tmp_path / "empty.bin"
        artifacts.ArtifactStream(path).commit()
        assert path.read_bytes() == b""
        artifacts.verify_artifact(path)


class TestStreamingVerification:
    def test_large_artifact_verifies_in_chunks(self, tmp_path):
        # Bigger than one read chunk (1 MiB): verification must stream.
        payload = bytes(range(256)) * (8 << 10)  # 2 MiB
        path = tmp_path / "big.bin"
        artifacts.atomic_write_bytes(path, payload, checksum=True)
        artifacts.verify_artifact(path)
        blob = bytearray(payload)
        blob[(1 << 20) + 17] ^= 0x01  # flip a bit past the first chunk
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactIntegrityError, match="digest mismatch"):
            artifacts.verify_artifact(path)


class TestQuarantine:
    def test_quarantine_moves_artifact_and_sidecar(self, tmp_path):
        path = tmp_path / "art.bin"
        artifacts.atomic_write_bytes(path, b"x", checksum=True)
        moved = artifacts.quarantine(path)
        assert moved.name == "art.bin.quarantined"
        assert moved.exists()
        assert not path.exists()
        assert not artifacts.checksum_path(path).exists()

    def test_verify_or_quarantine_clean(self, tmp_path):
        path = tmp_path / "art.bin"
        artifacts.atomic_write_bytes(path, b"x", checksum=True)
        assert artifacts.verify_or_quarantine(path) is None
        assert path.exists()

    def test_verify_or_quarantine_corrupt(self, tmp_path):
        path = tmp_path / "art.bin"
        artifacts.atomic_write_bytes(path, b"xyz", checksum=True)
        path.write_bytes(b"xyZ")
        moved = artifacts.verify_or_quarantine(path)
        assert moved is not None
        assert moved.suffix == ".quarantined"
        assert not path.exists()

    def test_verify_or_quarantine_missing(self, tmp_path):
        ghost = tmp_path / "ghost.bin"
        assert artifacts.verify_or_quarantine(ghost) == ghost
