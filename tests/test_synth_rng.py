"""Unit tests for deterministic seed derivation."""

from repro.synth.rng import derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2011, "tags") == derive_seed(2011, "tags")

    def test_labels_independent(self):
        assert derive_seed(2011, "tags") != derive_seed(2011, "videos")

    def test_seeds_independent(self):
        assert derive_seed(1, "tags") != derive_seed(2, "tags")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(123456789, "x") < 2**64


class TestSpawnRng:
    def test_same_label_same_stream(self):
        a = spawn_rng(7, "component").random(10)
        b = spawn_rng(7, "component").random(10)
        assert (a == b).all()

    def test_different_labels_different_streams(self):
        a = spawn_rng(7, "a").random(10)
        b = spawn_rng(7, "b").random(10)
        assert not (a == b).all()
