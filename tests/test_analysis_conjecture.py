"""Tests for the hold-out conjecture experiment."""

import pytest

from repro.analysis.conjecture import (
    evaluate_conjecture,
    predict_from_tags,
    split_dataset,
)
from repro.errors import AnalysisError


class TestSplit:
    def test_split_partitions(self, tiny_dataset):
        train, test = split_dataset(tiny_dataset, 0.3)
        assert len(train) + len(test) == len(tiny_dataset)
        assert not set(train.video_ids()) & set(test.video_ids())

    def test_split_deterministic(self, tiny_dataset):
        a_train, _ = split_dataset(tiny_dataset, 0.3)
        b_train, _ = split_dataset(tiny_dataset, 0.3)
        assert a_train.video_ids() == b_train.video_ids()

    def test_salt_changes_split(self, tiny_dataset):
        a_train, _ = split_dataset(tiny_dataset, 0.3, salt="a")
        b_train, _ = split_dataset(tiny_dataset, 0.3, salt="b")
        assert a_train.video_ids() != b_train.video_ids()

    def test_fraction_roughly_respected(self, tiny_dataset):
        _, test = split_dataset(tiny_dataset, 0.3)
        fraction = len(test) / len(tiny_dataset)
        assert 0.15 < fraction < 0.45

    def test_invalid_fraction_rejected(self, tiny_dataset):
        with pytest.raises(AnalysisError):
            split_dataset(tiny_dataset, 0.0)
        with pytest.raises(AnalysisError):
            split_dataset(tiny_dataset, 1.0)


class TestPredictFromTags:
    def test_prediction_is_distribution(self, tiny_pipeline):
        table = tiny_pipeline.tag_table
        video = next(iter(tiny_pipeline.dataset))
        prediction = predict_from_tags(video, table)
        assert prediction is not None
        assert prediction.sum() == pytest.approx(1.0)
        assert prediction.min() >= 0.0

    def test_unknown_tags_give_none(self, tiny_pipeline):
        from repro.datamodel.video import Video

        video = Video(
            video_id="AAAAAAAAAAA",
            title="t",
            uploader="u",
            upload_date="2010-01-01",
            views=10,
            tags=("tag-that-does-not-exist-xyz",),
        )
        assert predict_from_tags(video, tiny_pipeline.tag_table) is None

    def test_all_weightings_produce_distributions(self, tiny_pipeline):
        table = tiny_pipeline.tag_table
        video = next(iter(tiny_pipeline.dataset))
        for weighting in ("views", "uniform", "position", "specificity"):
            prediction = predict_from_tags(video, table, weighting)
            assert prediction.sum() == pytest.approx(1.0)

    def test_unknown_weighting_rejected(self, tiny_pipeline):
        video = next(iter(tiny_pipeline.dataset))
        with pytest.raises(AnalysisError):
            predict_from_tags(video, tiny_pipeline.tag_table, "magic")


class TestEvaluateConjecture:
    @pytest.fixture(scope="class")
    def result(self, tiny_pipeline):
        return evaluate_conjecture(
            tiny_pipeline.dataset,
            tiny_pipeline.reconstructor,
            universe=tiny_pipeline.universe,
        )

    def test_three_predictors_scored(self, result):
        names = [score.name for score in result.scores]
        assert names == ["tags", "prior", "uniform"]

    def test_paper_conjecture_holds_on_synthetic_world(self, result):
        # tags < prior < uniform — the ordering the paper predicts.
        assert result.conjecture_holds()

    def test_win_rate_in_unit_interval(self, result):
        assert 0.0 <= result.tag_win_rate_vs_prior <= 1.0

    def test_scores_consistent(self, result):
        for score in result.scores:
            assert score.videos > 0
            assert score.mean_jsd >= 0.0
            assert score.median_jsd >= 0.0

    def test_score_lookup(self, result):
        assert result.score("tags").name == "tags"
        with pytest.raises(AnalysisError):
            result.score("nonexistent")

    def test_reconstructed_reference_mode(self, tiny_pipeline):
        # Without a universe the reference is the reconstructed shares;
        # the ordering still holds.
        result = evaluate_conjecture(
            tiny_pipeline.dataset, tiny_pipeline.reconstructor
        )
        assert result.score("tags").mean_jsd < result.score("uniform").mean_jsd
