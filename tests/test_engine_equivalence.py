"""Property tests: the columnar engine against the scalar oracle.

The contract the ISSUE encodes: for any dataset, the vectorized
Eq. (1)–(3) path agrees with the per-video scalar reference within 1e-9
— in plain, naive and smoothed modes, zero-view videos included. The
chunked/streaming variants carry a stronger contract: **bit-identical**
float64 output for any chunk size (1 row, a prime, larger than the
dataset), and ≤1e-4 relative in float32.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model

RTOL = 1e-9

#: A small sub-axis keeps example generation fast while still exercising
#: sparse vectors on the full 62-country registry.
_CODES = default_registry().codes()[:12]
_TAGS = ("a", "b", "c", "d", "e")


def _video(i, views, tags, pop):
    return Video(
        video_id=f"AAAAAAAAA{i:02d}",
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector(pop) if pop is not None else None,
    )


@st.composite
def datasets(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    videos = []
    for i in range(n):
        intensities = draw(
            st.dictionaries(
                st.sampled_from(_CODES),
                st.integers(min_value=0, max_value=61),
                max_size=6,
            )
        )
        # PopularityVector drops zeros itself; an empty dict models the
        # paper's "empty popularity vector" reject case.
        pop = intensities if draw(st.booleans()) else None
        views = draw(st.sampled_from((0, 1, 17, 1_000, 2_000_000_000)))
        tags = tuple(
            draw(st.lists(st.sampled_from(_TAGS), max_size=4))
        )
        videos.append(_video(i, views, tags, pop))
    return Dataset(videos)


def _reconstructor(mode):
    traffic = default_traffic_model()
    if mode == "naive":
        return ViewReconstructor(traffic, naive=True)
    if mode == "smoothed":
        return ViewReconstructor(traffic, smoothing=0.7)
    return ViewReconstructor(traffic)


@pytest.mark.parametrize("mode", ["plain", "naive", "smoothed"])
class TestReconstructionEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(dataset=datasets())
    def test_for_dataset_matches_oracle(self, mode, dataset):
        reconstructor = _reconstructor(mode)
        scalar = reconstructor.for_dataset(dataset, engine="scalar")
        columnar = reconstructor.for_dataset(dataset, engine="columnar")
        assert set(scalar) == set(columnar)
        for video_id, expected in scalar.items():
            np.testing.assert_allclose(
                columnar[video_id], expected, rtol=RTOL, atol=RTOL
            )

    @settings(max_examples=40, deadline=None)
    @given(dataset=datasets())
    def test_tag_table_matches_oracle(self, mode, dataset):
        reconstructor = _reconstructor(mode)
        scalar = TagViewsTable(dataset, reconstructor, engine="scalar")
        columnar = TagViewsTable(dataset, reconstructor, engine="columnar")
        assert scalar.tags() == columnar.tags()
        np.testing.assert_allclose(
            columnar.views_matrix(),
            scalar.views_matrix(),
            rtol=RTOL,
            atol=RTOL,
        )
        np.testing.assert_array_equal(
            columnar.video_counts(), scalar.video_counts()
        )


class TestEdgeCases:
    def test_zero_view_videos_reconstruct_to_zero_rows(self):
        dataset = Dataset(
            [
                _video(0, 0, ("a",), {"BR": 61}),
                _video(1, 500, ("a", "b"), {"US": 40}),
            ]
        )
        reconstructor = ViewReconstructor(default_traffic_model())
        for engine in ("scalar", "columnar"):
            result = reconstructor.for_dataset(dataset, engine=engine)
            assert result["AAAAAAAAA00"].sum() == 0.0
            assert result["AAAAAAAAA01"].sum() == pytest.approx(500)

    def test_smoothing_spreads_mass_identically(self):
        dataset = Dataset([_video(0, 1000, ("a",), {"SG": 61})])
        reconstructor = ViewReconstructor(
            default_traffic_model(), smoothing=0.5
        )
        scalar = reconstructor.for_dataset(dataset, engine="scalar")
        columnar = reconstructor.for_dataset(dataset, engine="columnar")
        row = columnar["AAAAAAAAA00"]
        np.testing.assert_allclose(
            row, scalar["AAAAAAAAA00"], rtol=RTOL, atol=RTOL
        )
        # Smoothing leaks mass to every country, not just the coloured one.
        assert np.all(row > 0)

    def test_tiny_pipeline_tables_agree(self, tiny_dataset, tiny_reconstructor):
        scalar = TagViewsTable(tiny_dataset, tiny_reconstructor, engine="scalar")
        columnar = TagViewsTable(
            tiny_dataset, tiny_reconstructor, engine="columnar"
        )
        np.testing.assert_allclose(
            columnar.views_matrix(), scalar.views_matrix(), rtol=RTOL
        )


#: Chunk/block sizes the streaming contracts must be invariant under —
#: degenerate (one row/entry at a time), an awkward prime, and "bigger
#: than anything the strategies generate" (the single-chunk fast path).
_CHUNKINGS = (1, 3, 10_000)


@pytest.mark.parametrize("mode", ["plain", "naive", "smoothed"])
class TestChunkedEquivalence:
    """The chunked engine is *bit-identical* to dense float64 — not
    merely close: both run :func:`repro.engine.compute.reconstruct_rows`
    on the same rows, so any drift is a kernel bug, not roundoff."""

    @settings(max_examples=30, deadline=None)
    @given(dataset=datasets())
    def test_chunked_matrix_bitwise_equal(self, mode, dataset):
        from repro.engine.columnar import build_columnar

        reconstructor = _reconstructor(mode)
        columnar = build_columnar(dataset, reconstructor.registry)
        dense = reconstructor.matrix_for_columnar(columnar)
        for chunk_rows in _CHUNKINGS:
            chunked = reconstructor.matrix_for_columnar(
                columnar, chunk_rows=chunk_rows
            )
            np.testing.assert_array_equal(chunked, dense)

    @settings(max_examples=30, deadline=None)
    @given(dataset=datasets())
    def test_chunked_table_bitwise_equal(self, mode, dataset):
        reconstructor = _reconstructor(mode)
        dense = TagViewsTable(dataset, reconstructor, engine="columnar")
        for block_entries in _CHUNKINGS:
            chunked = TagViewsTable(
                dataset,
                reconstructor,
                engine="chunked",
                block_entries=block_entries,
            )
            assert chunked.tags() == dense.tags()
            np.testing.assert_array_equal(
                chunked.views_matrix(), dense.views_matrix()
            )
            np.testing.assert_array_equal(
                chunked.video_counts(), dense.video_counts()
            )

    @settings(max_examples=30, deadline=None)
    @given(dataset=datasets())
    def test_float32_within_documented_bound(self, mode, dataset):
        reconstructor = _reconstructor(mode)
        dense = TagViewsTable(dataset, reconstructor, engine="columnar")
        for engine in ("columnar", "chunked"):
            f32 = TagViewsTable(
                dataset, reconstructor, engine=engine, dtype="float32"
            )
            a = f32.views_matrix()
            b = dense.views_matrix()
            mask = np.abs(b) > 0
            if mask.any():
                rel = np.max(np.abs(a[mask] - b[mask]) / np.abs(b[mask]))
                assert rel <= 1e-4
            # Exact zeros stay exact zeros in float32.
            np.testing.assert_array_equal(a[~mask], b[~mask])


class TestRowKernelChunking:
    """Every row kernel is chunk-size invariant, including the metric
    kernels the streaming row-metrics path composes."""

    @settings(max_examples=25, deadline=None)
    @given(dataset=datasets())
    def test_row_metrics_streaming_matches_dense(self, dataset):
        from repro.engine.columnar import build_columnar
        from repro.engine.compute import (
            entropy_rows,
            gini_rows,
            herfindahl_rows,
            rows_to_distributions,
            top_k_share_rows,
        )
        from repro.engine.outofcore import row_metrics_streaming

        reconstructor = _reconstructor("plain")
        columnar = build_columnar(dataset, reconstructor.registry)
        shares = rows_to_distributions(
            reconstructor.matrix_for_columnar(columnar)
        )
        expected = {
            "entropy": entropy_rows(shares),
            "gini": gini_rows(shares),
            "hhi": herfindahl_rows(shares),
            "top_k_share": top_k_share_rows(shares, k=1),
        }
        for chunk_rows in _CHUNKINGS:
            got = row_metrics_streaming(
                columnar,
                prior=reconstructor.prior,
                chunk_rows=chunk_rows,
            )
            for key, want in expected.items():
                np.testing.assert_array_equal(got[key], want)
