"""Tests for bootstrap confidence intervals."""

import pytest

from repro.analysis.bootstrap import bootstrap_tag_ci
from repro.analysis.metrics import top_k_share
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def heavy_tag(tiny_pipeline):
    """A tag with many videos (stable bootstrap)."""
    return tiny_pipeline.tag_table.top_tags_by_views(1)[0][0]


class TestBootstrapCI:
    def test_interval_contains_point(self, tiny_pipeline, heavy_tag):
        ci = bootstrap_tag_ci(
            tiny_pipeline.dataset,
            heavy_tag,
            "top1",
            tiny_pipeline.reconstructor,
            n_boot=100,
        )
        assert ci.low <= ci.point <= ci.high
        assert ci.contains(ci.point)
        assert ci.width >= 0.0

    def test_point_matches_direct_computation(self, tiny_pipeline, heavy_tag):
        ci = bootstrap_tag_ci(
            tiny_pipeline.dataset,
            heavy_tag,
            "top1",
            tiny_pipeline.reconstructor,
            n_boot=50,
        )
        direct = top_k_share(
            tiny_pipeline.tag_table.shares_for(heavy_tag), 1
        )
        assert ci.point == pytest.approx(direct, rel=1e-9)

    def test_deterministic_given_seed(self, tiny_pipeline, heavy_tag):
        kwargs = dict(
            statistic="jsd",
            reconstructor=tiny_pipeline.reconstructor,
            n_boot=60,
            seed=5,
        )
        a = bootstrap_tag_ci(tiny_pipeline.dataset, heavy_tag, **kwargs)
        b = bootstrap_tag_ci(tiny_pipeline.dataset, heavy_tag, **kwargs)
        assert (a.low, a.high) == (b.low, b.high)

    def test_more_videos_narrower_interval(self, tiny_pipeline):
        # The heaviest tag (many videos) should have a narrower top1 CI
        # than a tag with barely enough videos.
        table = tiny_pipeline.tag_table
        heavy = table.top_tags_by_views(1)[0][0]
        sparse_candidates = [
            tag for tag in table.tags() if 2 <= table.video_count(tag) <= 4
        ]
        if not sparse_candidates:
            pytest.skip("no sparse tag in tiny corpus")
        sparse = sparse_candidates[0]
        wide = bootstrap_tag_ci(
            tiny_pipeline.dataset, sparse, "top1",
            tiny_pipeline.reconstructor, n_boot=100,
        )
        narrow = bootstrap_tag_ci(
            tiny_pipeline.dataset, heavy, "top1",
            tiny_pipeline.reconstructor, n_boot=100,
        )
        assert narrow.width < wide.width + 0.25  # weak but robust ordering

    def test_custom_statistic_callable(self, tiny_pipeline, heavy_tag):
        ci = bootstrap_tag_ci(
            tiny_pipeline.dataset,
            heavy_tag,
            lambda shares: float(shares.max()),
            tiny_pipeline.reconstructor,
            n_boot=50,
        )
        assert 0.0 < ci.point <= 1.0

    def test_all_named_statistics(self, tiny_pipeline, heavy_tag):
        for name in ("top1", "entropy", "jsd"):
            ci = bootstrap_tag_ci(
                tiny_pipeline.dataset,
                heavy_tag,
                name,
                tiny_pipeline.reconstructor,
                n_boot=30,
            )
            assert ci.n_boot == 30

    def test_unknown_statistic_rejected(self, tiny_pipeline, heavy_tag):
        with pytest.raises(AnalysisError):
            bootstrap_tag_ci(
                tiny_pipeline.dataset, heavy_tag, "magic",
                tiny_pipeline.reconstructor,
            )

    def test_insufficient_videos_rejected(self, tiny_pipeline):
        with pytest.raises(AnalysisError):
            bootstrap_tag_ci(
                tiny_pipeline.dataset,
                "tag-that-does-not-exist",
                "top1",
                tiny_pipeline.reconstructor,
            )

    def test_invalid_params_rejected(self, tiny_pipeline, heavy_tag):
        with pytest.raises(AnalysisError):
            bootstrap_tag_ci(
                tiny_pipeline.dataset, heavy_tag,
                reconstructor=tiny_pipeline.reconstructor, confidence=1.5,
            )
        with pytest.raises(AnalysisError):
            bootstrap_tag_ci(
                tiny_pipeline.dataset, heavy_tag,
                reconstructor=tiny_pipeline.reconstructor, n_boot=5,
            )
