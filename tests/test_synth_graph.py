"""Unit tests for the related-videos graph builder."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.synth.graph import RelatedGraphBuilder
from repro.synth.rng import spawn_rng
from repro.synth.tagmodel import TagVocabulary
from repro.synth.videomodel import VideoGenerator


def make_videos(seed, count, **generator_kwargs):
    vocabulary = TagVocabulary(n_tags=200, rng=spawn_rng(seed, "g-vocab"))
    return VideoGenerator(
        vocabulary, rng=spawn_rng(seed, "g-gen"), **generator_kwargs
    ).generate(count)


@pytest.fixture(scope="module")
def wired_videos():
    videos = make_videos(11, 250)
    RelatedGraphBuilder(rng=spawn_rng(11, "g-graph"), related_count=12).build(videos)
    return videos


class TestGraphStructure:
    def test_every_video_has_edges(self, wired_videos):
        for video in wired_videos:
            assert len(video.related_ids) == 12

    def test_no_self_loops(self, wired_videos):
        for video in wired_videos:
            assert video.video_id not in video.related_ids

    def test_no_duplicate_edges(self, wired_videos):
        for video in wired_videos:
            assert len(video.related_ids) == len(set(video.related_ids))

    def test_edges_point_to_existing_videos(self, wired_videos):
        ids = {video.video_id for video in wired_videos}
        for video in wired_videos:
            assert set(video.related_ids) <= ids

    def test_popular_videos_attract_more_in_edges(self, wired_videos):
        in_degree = {video.video_id: 0 for video in wired_videos}
        for video in wired_videos:
            for rid in video.related_ids:
                in_degree[rid] += 1
        ranked_by_views = sorted(
            wired_videos, key=lambda video: video.views, reverse=True
        )
        top = ranked_by_views[: len(ranked_by_views) // 10]
        bottom = ranked_by_views[-len(ranked_by_views) // 10 :]
        top_mean = np.mean([in_degree[video.video_id] for video in top])
        bottom_mean = np.mean([in_degree[video.video_id] for video in bottom])
        assert top_mean > 2 * bottom_mean

    def test_local_edges_share_primary_tag(self, wired_videos):
        by_id = {video.video_id: video for video in wired_videos}
        same_primary = 0
        total = 0
        for video in wired_videos:
            if not video.tags:
                continue
            for rid in video.related_ids:
                neighbour = by_id[rid]
                total += 1
                if neighbour.tags and neighbour.tags[0] == video.tags[0]:
                    same_primary += 1
        # p_local=0.7 makes a substantial fraction of edges community-local
        # (less than 0.7 because small communities fall back to global).
        assert same_primary / total > 0.25


class TestEdgeCases:
    def test_empty_population(self):
        RelatedGraphBuilder(rng=spawn_rng(1, "e")).build([])

    def test_single_video_gets_no_edges(self):
        videos = make_videos(12, 1)
        RelatedGraphBuilder(rng=spawn_rng(12, "g")).build(videos)
        assert videos[0].related_ids == ()

    def test_budget_clamped_to_population(self):
        videos = make_videos(13, 5)
        RelatedGraphBuilder(
            rng=spawn_rng(13, "g"), related_count=20
        ).build(videos)
        for video in videos:
            assert len(video.related_ids) == 4

    def test_deterministic_given_seed(self):
        first = make_videos(14, 60)
        RelatedGraphBuilder(rng=spawn_rng(14, "g")).build(first)
        second = make_videos(14, 60)
        RelatedGraphBuilder(rng=spawn_rng(14, "g")).build(second)
        assert [v.related_ids for v in first] == [v.related_ids for v in second]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            RelatedGraphBuilder(related_count=0)
        with pytest.raises(ConfigError):
            RelatedGraphBuilder(p_local=1.5)
        with pytest.raises(ConfigError):
            RelatedGraphBuilder(preferential_exponent=-1.0)
