"""Unit and property tests for the colour-extraction simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chartmap.colors import (
    GRADIENT_HIGH,
    GRADIENT_LOW,
    color_to_intensity,
    extract_popularity_from_colors,
    intensity_to_color,
    render_map_colors,
)
from repro.datamodel.popularity import MAX_INTENSITY, PopularityVector
from repro.errors import ChartDecodingError


class TestGradient:
    def test_endpoints(self):
        assert intensity_to_color(0) == GRADIENT_LOW
        assert intensity_to_color(MAX_INTENSITY) == GRADIENT_HIGH

    def test_out_of_range_rejected(self):
        with pytest.raises(ChartDecodingError):
            intensity_to_color(-1)
        with pytest.raises(ChartDecodingError):
            intensity_to_color(MAX_INTENSITY + 1)

    def test_monotone_darkening(self):
        # Each channel moves monotonically from low to high endpoint.
        previous = intensity_to_color(0)
        for intensity in range(1, MAX_INTENSITY + 1):
            current = intensity_to_color(intensity)
            for channel in range(3):
                direction = GRADIENT_HIGH[channel] - GRADIENT_LOW[channel]
                if direction < 0:
                    assert current[channel] <= previous[channel]
                else:
                    assert current[channel] >= previous[channel]
            previous = current

    @settings(max_examples=62, deadline=None)
    @given(intensity=st.integers(min_value=0, max_value=MAX_INTENSITY))
    def test_clean_roundtrip_is_exact(self, intensity):
        assert color_to_intensity(intensity_to_color(intensity)) == intensity

    @settings(max_examples=100, deadline=None)
    @given(
        intensity=st.integers(min_value=0, max_value=MAX_INTENSITY),
        noise=st.tuples(
            st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2)
        ),
    )
    def test_small_noise_costs_at_most_one_level(self, intensity, noise):
        color = intensity_to_color(intensity)
        noisy = tuple(
            min(max(channel + delta, 0), 255)
            for channel, delta in zip(color, noise)
        )
        assert abs(color_to_intensity(noisy) - intensity) <= 1

    def test_degenerate_gradient_rejected(self):
        with pytest.raises(ChartDecodingError):
            color_to_intensity((10, 10, 10), low=(5, 5, 5), high=(5, 5, 5))

    def test_far_off_gradient_color_clamps(self):
        assert color_to_intensity((255, 0, 255)) in range(MAX_INTENSITY + 1)


class TestMapExtraction:
    def test_render_then_extract_identity(self):
        vector = PopularityVector({"BR": 61, "US": 30, "JP": 3})
        colors = render_map_colors(vector)
        recovered = extract_popularity_from_colors(colors)
        assert recovered == vector

    def test_unknown_countries_skipped(self):
        colors = {"BR": intensity_to_color(61), "ZZ": intensity_to_color(10)}
        recovered = extract_popularity_from_colors(colors)
        assert len(recovered) == 1

    def test_noise_applied_per_country(self):
        vector = PopularityVector({"BR": 30})
        colors = render_map_colors(vector)
        recovered = extract_popularity_from_colors(
            colors, noise={"BR": (40, 40, 40)}
        )
        # Large noise shifts the decoded level.
        assert recovered["BR"] != 0
