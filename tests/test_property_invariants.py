"""Cross-module property tests: invariants that tie subsystems together.

Each property exercises a chain of components under hypothesis-generated
inputs — the places where unit tests of individual modules can't see a
contract violation between them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import total_variation
from repro.chartmap.mapchart import build_map_chart_url, parse_map_chart_url, popularity_from_chart
from repro.datamodel.popularity import MAX_INTENSITY, PopularityVector
from repro.reconstruct.views import (
    reconstruct_views,
    reconstruct_views_smoothed,
)
from repro.synth.videomodel import quantize_popularity
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model

REGISTRY = default_registry()
TRAFFIC = default_traffic_model(REGISTRY)


def share_vectors():
    """Random strictly positive share vectors on the registry axis."""
    return st.lists(
        st.floats(min_value=1e-6, max_value=1.0),
        min_size=len(REGISTRY),
        max_size=len(REGISTRY),
    ).map(lambda values: np.array(values) / np.sum(values))


class TestQuantizeReconstructChain:
    """Forward Eq. (1) then inverse Eq. (1)-(2) ≈ identity up to rounding."""

    @settings(max_examples=40, deadline=None)
    @given(shares=share_vectors())
    def test_roundtrip_error_bounded(self, shares):
        popularity = quantize_popularity(shares, TRAFFIC, REGISTRY)
        estimated = reconstruct_views(popularity, 10**9, TRAFFIC)
        recovered = estimated / estimated.sum()
        # Quantization to 62 levels bounds the recoverable accuracy; the
        # worst adversarial inputs (near-uniform shares, whose intensities
        # are dominated by the tiniest-prior country) lose just over 0.3
        # TV, so the invariant bound is 0.4.
        assert total_variation(recovered, shares) < 0.40

    @settings(max_examples=40, deadline=None)
    @given(shares=share_vectors())
    def test_quantization_always_saturates(self, shares):
        popularity = quantize_popularity(shares, TRAFFIC, REGISTRY)
        assert popularity.max_intensity() == MAX_INTENSITY

    @settings(max_examples=40, deadline=None)
    @given(shares=share_vectors())
    def test_chart_url_transport_is_lossless(self, shares):
        # The full 2011 publication path: quantize → chart URL → parse.
        popularity = quantize_popularity(shares, TRAFFIC, REGISTRY)
        recovered = popularity_from_chart(
            parse_map_chart_url(build_map_chart_url(popularity)), REGISTRY
        )
        assert recovered == popularity


class TestSmoothingProperties:
    @settings(max_examples=30, deadline=None)
    @given(shares=share_vectors(), views=st.integers(1, 10**9))
    def test_zero_smoothing_equals_plain(self, shares, views):
        popularity = quantize_popularity(shares, TRAFFIC, REGISTRY)
        plain = reconstruct_views(popularity, views, TRAFFIC)
        smoothed = reconstruct_views_smoothed(popularity, views, TRAFFIC, 0.0)
        assert np.allclose(plain, smoothed)

    @settings(max_examples=30, deadline=None)
    @given(
        shares=share_vectors(),
        views=st.integers(1, 10**9),
        lam=st.floats(min_value=0.01, max_value=5.0),
    )
    def test_smoothing_conserves_mass_and_positivity(self, shares, views, lam):
        popularity = quantize_popularity(shares, TRAFFIC, REGISTRY)
        smoothed = reconstruct_views_smoothed(popularity, views, TRAFFIC, lam)
        assert smoothed.sum() == pytest.approx(views, rel=1e-9)
        assert np.all(smoothed > 0)  # the floor is restored everywhere


class TestTokenBucketProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=100.0),
        burst=st.integers(min_value=1, max_value=20),
        n=st.integers(min_value=1, max_value=200),
    )
    def test_long_run_rate_never_exceeded(self, rate, burst, n):
        from repro.crawler.politeness import TokenBucket

        bucket = TokenBucket(rate, burst)
        clock = 0.0
        for _ in range(n):
            clock += bucket.acquire(clock)
        # n requests completed by `clock`; burst may front-load, but the
        # sustained rate bound must hold: n <= burst + rate * clock.
        assert n <= burst + rate * clock + 1e-6


class TestPopularityChartProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        intensities=st.dictionaries(
            st.sampled_from(REGISTRY.codes()),
            st.integers(min_value=1, max_value=MAX_INTENSITY),
            min_size=1,
        )
    )
    def test_reconstruction_support_equals_map_support(self, intensities):
        popularity = PopularityVector(intensities, REGISTRY)
        estimated = reconstruct_views(popularity, 10**6, TRAFFIC)
        support = {
            REGISTRY.codes()[i] for i in np.nonzero(estimated)[0]
        }
        assert support == set(popularity.countries())
