"""Unit tests for region groupings and language clusters."""

from repro.world.regions import (
    LANGUAGE_CLUSTERS,
    REGIONS,
    countries_in_region,
    countries_speaking,
)


class TestRegions:
    def test_every_region_nonempty(self, registry):
        for region in REGIONS:
            assert countries_in_region(region, registry)

    def test_regions_partition_registry(self, registry):
        all_codes = []
        for region in REGIONS:
            all_codes.extend(countries_in_region(region, registry))
        assert sorted(all_codes) == sorted(registry.codes())

    def test_brazil_in_latin_america(self, registry):
        assert "BR" in countries_in_region("latin-america", registry)

    def test_unknown_region_empty(self, registry):
        assert countries_in_region("atlantis", registry) == []


class TestLanguageClusters:
    def test_every_cluster_spans_multiple_countries(self, registry):
        for language in LANGUAGE_CLUSTERS:
            assert len(countries_speaking(language, registry)) >= 2, language

    def test_portuguese_cluster_contains_brazil_and_portugal(self, registry):
        cluster = countries_speaking("portuguese", registry)
        assert "BR" in cluster and "PT" in cluster

    def test_spanish_cluster_spans_two_continents(self, registry):
        cluster = set(countries_speaking("spanish", registry))
        assert "ES" in cluster
        assert cluster.intersection({"MX", "AR", "CL", "CO", "PE"})

    def test_unknown_language_empty(self, registry):
        assert countries_speaking("klingon", registry) == []

    def test_results_in_registry_order(self, registry):
        cluster = countries_speaking("english", registry)
        positions = [registry.index_of(code) for code in cluster]
        assert positions == sorted(positions)
