"""Temporal universe: deterministic delta streams that telescope exactly.

The guarantees under test: same config → bit-identical stream; the
per-video deltas telescope to the static snapshot's final counts;
arrivals cover every row (eligible and funnel-dropped alike); all three
trajectory classes are represented; scaling the horizon only changes
the time axis, never the corpus.
"""

import numpy as np
import pytest

from repro.engine.incremental import IncrementalEngine
from repro.errors import ConfigError
from repro.synth.temporal import (
    CLASS_NAMES,
    MEMORYLESS,
    QUALITY,
    TEMPORAL_PRESETS,
    VIRAL,
    TemporalConfig,
    TemporalUniverse,
    make_temporal,
    scaled_temporal,
    temporal_preset,
)


@pytest.fixture(scope="module")
def tiny():
    return make_temporal("tiny-temporal")


@pytest.fixture(scope="module")
def tiny_batches(tiny):
    return list(tiny.iter_batches())


class TestPresets:
    def test_expected_presets_exist(self):
        assert {"tiny-temporal", "small-temporal", "medium-temporal"} <= set(
            TEMPORAL_PRESETS
        )

    def test_temporal_preset_lookup(self):
        config, temporal = temporal_preset("tiny-temporal")
        assert temporal.n_steps == 16
        assert config.n_videos > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError, match="unknown temporal preset"):
            temporal_preset("huge-temporal")

    def test_class_name_codes_align(self):
        assert CLASS_NAMES[VIRAL] == "viral"
        assert CLASS_NAMES[MEMORYLESS] == "memoryless"
        assert CLASS_NAMES[QUALITY] == "quality"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_steps": 0},
            {"step_seconds": 0.0},
            {"arrival_fraction": 0.0},
            {"arrival_fraction": 1.5},
            {"p_viral": -0.1},
            {"p_viral": 0.7, "p_memoryless": 0.7},
            {"viral_lifetime": (0, 4)},
            {"quality_lifetime": (9, 3)},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigError):
            TemporalConfig(**kwargs).validate()


class TestStreamShape:
    def test_one_batch_per_step(self, tiny, tiny_batches):
        assert len(tiny_batches) == tiny.temporal.n_steps

    def test_timestamps_nondecreasing(self, tiny, tiny_batches):
        stamps = [batch.timestamp for batch in tiny_batches]
        assert stamps == sorted(stamps)
        assert stamps[1] - stamps[0] == tiny.temporal.step_seconds

    def test_every_video_arrives_exactly_once(self, tiny, tiny_batches):
        arrived = np.concatenate(
            [batch.new_video_ids for batch in tiny_batches]
        )
        assert len(arrived) == len(tiny)
        assert len(set(arrived.tolist())) == len(tiny)

    def test_arrivals_confined_to_arrival_window(self, tiny, tiny_batches):
        window = int(
            np.ceil(tiny.temporal.n_steps * tiny.temporal.arrival_fraction)
        )
        for step, batch in enumerate(tiny_batches):
            if step > window:
                assert batch.n_arrivals == 0

    def test_all_trajectory_classes_present(self, tiny):
        assert set(np.unique(tiny.classes)) == {VIRAL, MEMORYLESS, QUALITY}

    def test_ineligible_rows_emit_no_deltas(self, tiny, tiny_batches):
        dropped = set(tiny.video_ids[~tiny.has_map].tolist())
        assert dropped  # tiny preset does produce funnel-dropped rows
        for batch in tiny_batches:
            assert dropped.isdisjoint(batch.video_ids.tolist())


class TestDeterminism:
    def test_same_preset_same_stream(self, tiny_batches):
        replay = list(make_temporal("tiny-temporal").iter_batches())
        assert len(replay) == len(tiny_batches)
        for a, b in zip(tiny_batches, replay):
            assert a.timestamp == b.timestamp
            assert np.array_equal(a.video_ids, b.video_ids)
            assert np.array_equal(a.view_deltas, b.view_deltas)
            assert np.array_equal(a.new_video_ids, b.new_video_ids)
            assert np.array_equal(a.new_views, b.new_views)

    def test_different_seed_different_trajectories(self, tiny):
        config, temporal = temporal_preset("tiny-temporal")
        other = TemporalUniverse(
            type(config)(**{**config.__dict__, "seed": config.seed + 1}),
            temporal,
        )
        assert not np.array_equal(other.views, tiny.views)


class TestTelescoping:
    def test_deltas_telescope_to_snapshot(self, tiny, tiny_batches):
        """Σ deltas + initial views == final static snapshot, exactly."""
        totals = {}
        for batch in tiny_batches:
            for vid, views in zip(
                batch.new_video_ids.tolist(), batch.new_views.tolist()
            ):
                totals[vid] = views
            for vid, delta in zip(
                batch.video_ids.tolist(), batch.view_deltas.tolist()
            ):
                totals[vid] += delta
        for row in np.flatnonzero(tiny.has_map):
            assert totals[str(tiny.video_ids[row])] == tiny.views[row]

    def test_snapshot_eligible_matches_ingested_state(self, tiny_batches):
        engine = IncrementalEngine()
        for batch in tiny_batches:
            engine.apply(batch)
        pop, views, indptr, names = make_temporal(
            "tiny-temporal"
        ).snapshot_eligible()
        assert engine.n_videos == len(views)
        assert np.array_equal(engine.views, views)
        assert np.array_equal(engine.pop, pop)
        assert len(names) == indptr[-1]


class TestScaling:
    def test_scaled_temporal_overrides_horizon(self):
        short = scaled_temporal("tiny-temporal", 4)
        assert short.temporal.n_steps == 4
        assert len(list(short.iter_batches())) == 4

    def test_scaled_default_keeps_preset_horizon(self):
        assert scaled_temporal("tiny-temporal").temporal.n_steps == 16

    def test_horizon_does_not_change_corpus(self, tiny):
        short = scaled_temporal("tiny-temporal", 4)
        assert np.array_equal(short.views, tiny.views)
        assert np.array_equal(short.pop, tiny.pop)
        # Lifetimes are clamped to the (shorter) horizon...
        assert short.lifetimes.max() <= 4
        # ...so the stream still telescopes to the same final state.
        engine = IncrementalEngine()
        for batch in short.iter_batches():
            engine.apply(batch)
        keep = short.has_map
        assert np.array_equal(engine.views, short.views[keep])
