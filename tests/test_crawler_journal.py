"""Journaled crawling: crash/resume identity for both crawlers."""

import pytest

from repro.api.service import YoutubeService
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.durability.fsfaults import FaultyFilesystem, SimulatedCrash
from repro.durability.journal import CheckpointJournal
from repro.errors import ConfigError


def records_of(result):
    return {v.video_id: v for v in result.dataset}


class TestJournaledSequentialCrawl:
    def test_journaling_does_not_change_the_crawl(self, tiny_universe, tmp_path):
        plain = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=60
        ).run()
        journaled = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=60,
            journal=CheckpointJournal(tmp_path),
            checkpoint_every=7,
        ).run()
        assert records_of(journaled) == records_of(plain)
        assert journaled.stats.checkpoints_written > 0

    def test_checkpoint_every_requires_journal(self, tiny_universe):
        with pytest.raises(ConfigError):
            SnowballCrawler(YoutubeService(tiny_universe), checkpoint_every=5)

    def test_checkpoint_every_must_be_positive(self, tiny_universe, tmp_path):
        with pytest.raises(ConfigError):
            SnowballCrawler(
                YoutubeService(tiny_universe),
                journal=CheckpointJournal(tmp_path),
                checkpoint_every=0,
            )

    def test_resume_from_empty_journal_is_fresh_crawl(
        self, tiny_universe, tmp_path
    ):
        crawler = SnowballCrawler.resume_from_journal(
            YoutubeService(tiny_universe),
            CheckpointJournal(tmp_path),
            max_videos=40,
        )
        result = crawler.run()
        assert len(result.dataset) == 40
        assert result.stats.journal_replays == 0

    # A 60-video crawl with checkpoint_every=7 and compact_every=4
    # performs 44 durability ops; the cut points span WAL creation,
    # mid-append, mid-compaction, and the final flush.
    @pytest.mark.parametrize("crash_at_op", [2, 9, 21, 33, 43])
    def test_crash_resume_identity(self, tiny_universe, tmp_path, crash_at_op):
        baseline = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=60,
            journal=CheckpointJournal(tmp_path / "baseline", compact_every=4),
            checkpoint_every=7,
        ).run()

        crash_dir = tmp_path / f"crash{crash_at_op}"
        fs = FaultyFilesystem(seed=1, crash_at_op=crash_at_op)
        with pytest.raises(SimulatedCrash):
            SnowballCrawler(
                YoutubeService(tiny_universe),
                max_videos=60,
                journal=CheckpointJournal(crash_dir, fs=fs, compact_every=4),
                checkpoint_every=7,
            ).run()
        assert fs.crashed

        resumed = SnowballCrawler.resume_from_journal(
            YoutubeService(tiny_universe),
            CheckpointJournal(crash_dir, compact_every=4),
            max_videos=60,
            checkpoint_every=7,
        ).run()
        assert records_of(resumed) == records_of(baseline)

    def test_resume_counts_replays(self, tiny_universe, tmp_path):
        SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=30,
            journal=CheckpointJournal(tmp_path),
            checkpoint_every=5,
        ).run()
        resumed = SnowballCrawler.resume_from_journal(
            YoutubeService(tiny_universe),
            CheckpointJournal(tmp_path),
            max_videos=30,
        )
        assert resumed._stats.journal_replays == 1

    def test_recovery_quarantine_is_counted(self, tiny_universe, tmp_path):
        journal = CheckpointJournal(tmp_path)
        SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=30,
            journal=journal,
            checkpoint_every=5,
        ).run()
        journal.close()
        blob = bytearray(journal.wal_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        journal.wal_path.write_bytes(bytes(blob))
        resumed = SnowballCrawler.resume_from_journal(
            YoutubeService(tiny_universe),
            CheckpointJournal(tmp_path),
            max_videos=30,
        )
        assert resumed._stats.artifacts_quarantined > 0
        # Still completes correctly from whatever survived.
        result = resumed.run()
        assert len(result.dataset) == 30


class TestJournaledParallelCrawl:
    def test_journaled_run_then_resume_is_identical(
        self, tiny_universe, tmp_path
    ):
        journaled = ParallelSnowballCrawler(
            YoutubeService(tiny_universe),
            workers=4,
            max_videos=10_000,
            journal=CheckpointJournal(tmp_path),
            checkpoint_every=20,
        )
        first = journaled.run()
        assert first.stats.checkpoints_written > 0
        assert journaled.journal_errors == []

        resumed = ParallelSnowballCrawler.resume_from_journal(
            YoutubeService(tiny_universe),
            CheckpointJournal(tmp_path),
            workers=4,
            max_videos=10_000,
        )
        second = resumed.run()
        assert second.stats.journal_replays == 1
        assert records_of(second) == records_of(first)

    def test_snapshot_requeues_in_flight_items(self, tiny_universe, tmp_path):
        crawler = ParallelSnowballCrawler(
            YoutubeService(tiny_universe),
            workers=2,
            max_videos=100,
            journal=CheckpointJournal(tmp_path),
            checkpoint_every=10,
        )
        crawler._seed()
        crawler._seeded = True
        claimed = crawler._frontier.claim()
        checkpoint = crawler.checkpoint()
        # The claimed-but-unfinished item must lead the pending queue.
        assert checkpoint.pending[0] == claimed
        crawler._frontier.release(claimed)

    def test_mid_crawl_journal_failure_does_not_kill_the_crawl(
        self, tiny_universe, tmp_path
    ):
        # Every fsync fails: journal snapshots cannot be written, but the
        # crawl itself must still complete (durability degrades loudly).
        fs = FaultyFilesystem(seed=1, fault_rate=0.99, kinds=("eio",))
        crawler = ParallelSnowballCrawler(
            YoutubeService(tiny_universe),
            workers=2,
            max_videos=80,
            journal=CheckpointJournal(tmp_path, fs=fs),
            checkpoint_every=10,
        )
        result = crawler.run()
        assert len(result.dataset) == 80
        assert crawler.journal_errors  # the failures were recorded

    def test_plain_checkpoint_resume_equivalence(self, tiny_universe):
        crawler = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=3, max_videos=50
        )
        crawler.run()
        checkpoint = crawler.checkpoint()
        resumed = ParallelSnowballCrawler.resume(
            YoutubeService(tiny_universe),
            checkpoint,
            workers=3,
            max_videos=10_000,
        )
        full = resumed.run()
        exhaustive = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=3, max_videos=10_000
        ).run()
        assert set(full.dataset.video_ids()) == set(
            exhaustive.dataset.video_ids()
        )
