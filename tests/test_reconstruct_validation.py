"""Tests for estimator validation against synthetic ground truth."""

import pytest

from repro.reconstruct.validation import (
    ReconstructionReport,
    VideoReconstructionError,
    validate_against_universe,
)
from repro.reconstruct.views import ViewReconstructor


class TestValidation:
    def test_every_eligible_video_scored(self, tiny_pipeline):
        report = validate_against_universe(
            tiny_pipeline.universe, tiny_pipeline.dataset
        )
        assert report.count == len(tiny_pipeline.dataset)

    def test_max_videos_caps_scoring(self, tiny_pipeline):
        report = validate_against_universe(
            tiny_pipeline.universe, tiny_pipeline.dataset, max_videos=10
        )
        assert report.count == 10

    def test_estimator_beats_naive_baseline(self, tiny_pipeline):
        # The library-level headline: the paper's intensity interpretation
        # is much more accurate than reading pop(v) as view shares.
        universe = tiny_pipeline.universe
        dataset = tiny_pipeline.dataset
        smart = validate_against_universe(
            universe, dataset, ViewReconstructor(universe.traffic)
        )
        naive = validate_against_universe(
            universe, dataset, ViewReconstructor(universe.traffic, naive=True)
        )
        assert smart.mean_jsd() < 0.5 * naive.mean_jsd()
        assert smart.mean_tv() < 0.5 * naive.mean_tv()

    def test_estimator_absolute_quality(self, tiny_pipeline):
        report = validate_against_universe(
            tiny_pipeline.universe, tiny_pipeline.dataset
        )
        # Quantization alone cannot push mean TV beyond ~0.2 on this data.
        assert report.mean_tv() < 0.2

    def test_perturbed_prior_degrades_accuracy(self, tiny_pipeline):
        universe = tiny_pipeline.universe
        dataset = tiny_pipeline.dataset
        clean = validate_against_universe(
            universe, dataset, ViewReconstructor(universe.traffic)
        )
        noisy = validate_against_universe(
            universe,
            dataset,
            ViewReconstructor(universe.traffic.perturbed(0.5, seed=1)),
        )
        assert noisy.mean_jsd() > clean.mean_jsd()

    def test_report_statistics_consistent(self, tiny_pipeline):
        report = validate_against_universe(
            tiny_pipeline.universe, tiny_pipeline.dataset
        )
        assert 0 <= report.median_jsd() <= report.quantile_tv(1.0) + 1.0
        assert report.quantile_tv(0.5) <= report.quantile_tv(0.9)
        assert 0 <= report.view_weighted_mean_tv() <= 1

    def test_empty_report_defaults(self):
        report = ReconstructionReport(per_video=())
        assert report.count == 0
        assert report.mean_jsd() == 0.0
        assert report.view_weighted_mean_tv() == 0.0
        assert report.quantile_tv(0.9) == 0.0

    def test_as_rows_shape(self, tiny_pipeline):
        report = validate_against_universe(
            tiny_pipeline.universe, tiny_pipeline.dataset, max_videos=5
        )
        rows = dict(report.as_rows())
        assert rows["videos scored"] == 5
