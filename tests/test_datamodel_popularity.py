"""Unit and property tests for popularity vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.popularity import MAX_INTENSITY, PopularityVector
from repro.errors import InvalidPopularityVectorError
from repro.world.countries import default_registry


def intensity_dicts():
    codes = default_registry().codes()
    return st.dictionaries(
        st.sampled_from(codes),
        st.integers(min_value=0, max_value=MAX_INTENSITY),
        max_size=len(codes),
    )


class TestConstruction:
    def test_basic_vector(self):
        vector = PopularityVector({"BR": 61, "PT": 10})
        assert vector["BR"] == 61
        assert vector["PT"] == 10

    def test_absent_country_reads_zero(self):
        vector = PopularityVector({"BR": 61})
        assert vector["US"] == 0

    def test_zero_entries_dropped(self):
        vector = PopularityVector({"BR": 61, "US": 0})
        assert len(vector) == 1

    def test_unknown_country_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector({"XX": 10})

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector({"BR": MAX_INTENSITY + 1})

    def test_negative_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector({"BR": -1})

    def test_float_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector({"BR": 30.5})

    def test_bool_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector({"BR": True})

    def test_numpy_integer_accepted(self):
        vector = PopularityVector({"BR": np.int64(40)})
        assert vector["BR"] == 40

    def test_reading_unknown_country_raises(self):
        vector = PopularityVector({"BR": 61})
        with pytest.raises(InvalidPopularityVectorError):
            vector["XX"]


class TestProperties:
    def test_empty_vector(self):
        vector = PopularityVector.empty()
        assert vector.is_empty()
        assert vector.max_intensity() == 0
        assert not vector.is_saturated()

    def test_saturation_detection(self):
        assert PopularityVector({"BR": 61}).is_saturated()
        assert not PopularityVector({"BR": 60}).is_saturated()

    def test_countries_in_registry_order(self, registry):
        vector = PopularityVector({"BR": 10, "US": 20, "JP": 5})
        countries = vector.countries()
        positions = [registry.index_of(code) for code in countries]
        assert positions == sorted(positions)

    def test_iteration_yields_nonzero_pairs(self):
        vector = PopularityVector({"BR": 10, "US": 20})
        pairs = dict(vector)
        assert pairs == {"BR": 10, "US": 20}

    def test_equality_and_hash(self):
        a = PopularityVector({"BR": 10, "US": 0})
        b = PopularityVector({"BR": 10})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert PopularityVector({"BR": 10}) != PopularityVector({"BR": 11})


class TestArrayRoundtrip:
    def test_as_array_shape(self, registry):
        vector = PopularityVector({"BR": 61})
        dense = vector.as_array()
        assert dense.shape == (len(registry),)
        assert dense[registry.index_of("BR")] == 61
        assert dense.sum() == 61

    def test_from_array_wrong_length_rejected(self):
        with pytest.raises(InvalidPopularityVectorError):
            PopularityVector.from_array(np.array([1, 2, 3]))

    @settings(max_examples=50, deadline=None)
    @given(intensities=intensity_dicts())
    def test_dict_array_roundtrip(self, intensities):
        vector = PopularityVector(intensities)
        rebuilt = PopularityVector.from_array(vector.as_array())
        assert rebuilt == vector

    @settings(max_examples=50, deadline=None)
    @given(intensities=intensity_dicts())
    def test_as_dict_drops_zeros(self, intensities):
        vector = PopularityVector(intensities)
        as_dict = vector.as_dict()
        assert all(value > 0 for value in as_dict.values())
        expected = {k: v for k, v in intensities.items() if v > 0}
        assert as_dict == expected
