"""CLI tests for the analysis / world-persistence subcommands."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-world") / "world.jsonl.gz"
    assert main(["genworld", "--preset", "tiny", "--out", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def crawl_file(world_file, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-crawl") / "crawl.jsonl"
    code = main(
        ["crawl", "--world", str(world_file), "--out", str(path), "--max-videos", "200"]
    )
    assert code == 0
    return path


class TestGenworldAndWorldCrawl:
    def test_world_file_written(self, world_file):
        assert world_file.exists()
        assert world_file.stat().st_size > 1000

    def test_crawl_from_world(self, crawl_file):
        assert sum(1 for _ in crawl_file.open()) == 200

    def test_genworld_seed_changes_world(self, tmp_path, capsys):
        a = tmp_path / "a.gz"
        b = tmp_path / "b.gz"
        assert main(["genworld", "--preset", "tiny", "--out", str(a), "--seed", "1"]) == 0
        assert main(["genworld", "--preset", "tiny", "--out", str(b), "--seed", "2"]) == 0
        assert a.read_bytes() != b.read_bytes()


class TestValidate:
    def test_validate_against_world(self, world_file, crawl_file, capsys):
        code = main(
            ["validate", "--world", str(world_file), "--in", str(crawl_file)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean JSD" in output
        assert "videos scored" in output

    def test_validate_with_smoothing(self, world_file, crawl_file, capsys):
        code = main(
            [
                "validate", "--world", str(world_file), "--in", str(crawl_file),
                "--smoothing", "0.1",
            ]
        )
        assert code == 0
        assert "λ=0.1" in capsys.readouterr().out

    def test_missing_world_is_clean_error(self, crawl_file, tmp_path, capsys):
        code = main(
            ["validate", "--world", str(tmp_path / "no.gz"), "--in", str(crawl_file)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestClassify:
    def test_classify_prints_table(self, crawl_file, capsys):
        assert main(["classify", "--in", str(crawl_file)]) == 0
        output = capsys.readouterr().out
        assert "most local" in output
        assert "global=" in output

    def test_classify_csv_export(self, crawl_file, tmp_path, capsys):
        csv_path = tmp_path / "tags.csv"
        assert main(
            ["classify", "--in", str(crawl_file), "--csv", str(csv_path)]
        ) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("tag,classification,top_country")
        assert len(lines) > 5


class TestCountryAndAudit:
    def test_country_signature(self, crawl_file, capsys):
        assert main(["country", "--in", str(crawl_file), "BR"]) == 0
        output = capsys.readouterr().out
        assert "over-watched in BR" in output
        assert "lift" in output

    def test_country_lowercase_code_accepted(self, crawl_file, capsys):
        assert main(["country", "--in", str(crawl_file), "jp"]) == 0
        assert "over-watched in JP" in capsys.readouterr().out

    def test_audit_clean_crawl(self, crawl_file, capsys):
        assert main(["audit", "--in", str(crawl_file)]) == 0
        assert "integrity audit" in capsys.readouterr().out

    def test_audit_with_reference_check_flags_partial_crawl(
        self, crawl_file, capsys
    ):
        # A 200-video partial crawl necessarily has dangling related ids.
        code = main(
            ["audit", "--in", str(crawl_file), "--check-references"]
        )
        assert code == 1
        assert "dangling-related-ids" in capsys.readouterr().out


class TestPlot:
    def test_plot_renders_distributions(self, crawl_file, capsys):
        assert main(["plot", "--in", str(crawl_file)]) == 0
        output = capsys.readouterr().out
        assert "View counts" in output
        assert "View-count CCDF" in output
        assert "Tag usage CCDF" in output
        assert "•" in output


class TestRegionsAndCooccur:
    def test_regions(self, crawl_file, capsys):
        assert main(["regions", "--in", str(crawl_file)]) == 0
        output = capsys.readouterr().out
        assert "Europe" in output
        assert "Asia-Pacific" in output

    def test_cooccur_known_tag(self, crawl_file, capsys):
        assert main(["cooccur", "--in", str(crawl_file), "music"]) == 0
        assert "associated with 'music'" in capsys.readouterr().out

    def test_cooccur_unknown_tag(self, crawl_file, capsys):
        assert main(["cooccur", "--in", str(crawl_file), "zzz-absent"]) == 1


class TestTemporalCommands:
    def test_ingest_deltas_with_oracle_check(self, capsys):
        assert (
            main(
                [
                    "ingest-deltas",
                    "--preset",
                    "tiny-temporal",
                    "--verify-oracle",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "batches applied:   16" in output
        assert "bit-identical" in output

    def test_ingest_deltas_metrics_and_eager_limit(self, capsys):
        code = main(
            [
                "ingest-deltas",
                "--preset",
                "tiny-temporal",
                "--steps",
                "4",
                "--metrics",
                "--eager-limit",
                "4",
            ]
        )
        assert code == 0
        assert "deltas applied" in capsys.readouterr().out

    def test_trend_worldwide(self, capsys):
        assert main(["trend", "--preset", "tiny-temporal", "--count", "3"]) == 0
        output = capsys.readouterr().out
        assert "top-moving tags" in output
        assert "top-moving videos" in output
        assert "pre-warm demand hint" in output

    def test_trend_single_country(self, capsys):
        code = main(
            ["trend", "--preset", "tiny-temporal", "--country", "US"]
        )
        assert code == 0
        assert "US" in capsys.readouterr().out

    def test_trend_unknown_country_fails(self, capsys):
        code = main(
            ["trend", "--preset", "tiny-temporal", "--country", "XX"]
        )
        assert code == 2
        assert "unknown country" in capsys.readouterr().err

    def test_unknown_temporal_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["ingest-deltas", "--preset", "huge-temporal"])
