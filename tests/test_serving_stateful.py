"""Property-based stateful tests for the serving controller.

A Hypothesis state machine drives random interleavings of serve /
kill / revive / push / advance-time against a small origin →
controller → replicas service on a *persistent* virtual-time loop
(:class:`~repro.serving.simtime.SimulationHarness`), and checks the
routing invariants no interleaving may break:

- every request is served exactly once (local + remote + origin
  always equals requests; nothing fails, nothing is double-counted);
- no request is ever served by a dead replica;
- the controller's routing index stays a superset of what each
  replica actually holds (stale entries allowed — they self-heal —
  but never missing entries).
"""

import asyncio

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.datamodel.dataset import Dataset
from repro.datamodel.video import Video
from repro.errors import CircuitOpenError, ReplicaDownError
from repro.placement.cache import LRUCache
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    Controller,
    HedgePolicy,
    Origin,
    Replica,
    SimulationHarness,
)
from repro.world.countries import default_registry

VIDEOS = [
    Video(
        video_id=f"AAAAAAAAA{i:02d}",
        title=f"video {i}",
        uploader="uploader",
        upload_date="2011-01-01",
        views=100 + i,
        tags=("music",),
    )
    for i in range(6)
]
VIDEO_IDS = [video.video_id for video in VIDEOS]
REPLICA_COUNTRIES = ["US", "BR", "JP"]
REPLICA_IDS = [f"edge-{country}" for country in REPLICA_COUNTRIES]
REQUEST_COUNTRIES = ["US", "BR", "JP", "DE", "FR", "IN"]

video_strategy = st.sampled_from(VIDEO_IDS)
replica_strategy = st.sampled_from(REPLICA_IDS)
country_strategy = st.sampled_from(REQUEST_COUNTRIES)


class ServingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.harness = SimulationHarness()
        registry = default_registry()
        self.origin = Origin(Dataset(VIDEOS, registry=registry))
        self.replicas = {
            f"edge-{country}": Replica(
                f"edge-{country}", country, LRUCache(4)
            )
            for country in REPLICA_COUNTRIES
        }
        self.controller = Controller(
            self.origin, list(self.replicas.values()), registry
        )
        self.model_requests = 0

    def teardown(self):
        self.harness.close()

    # -- actions ------------------------------------------------------------

    @rule(video_id=video_strategy, country=country_strategy)
    def serve(self, video_id, country):
        result = self.harness.run(self.controller.get(video_id, country))
        self.model_requests += 1
        # Exactly once, from a known source.
        assert result.video_id == video_id
        assert result.source in ("local", "remote", "origin")
        # Never served by a dead replica.
        if result.source != "origin":
            assert self.replicas[result.served_by].alive
        else:
            assert result.served_by == "origin"
        assert result.distance_km >= 0.0

    @rule(replica_id=replica_strategy)
    def kill(self, replica_id):
        self.replicas[replica_id].fail()

    @rule(replica_id=replica_strategy)
    def revive(self, replica_id):
        self.replicas[replica_id].recover()

    @rule(video_id=video_strategy, replica_id=replica_strategy)
    def push(self, video_id, replica_id):
        try:
            self.harness.run(self.controller.push(replica_id, video_id))
        except ReplicaDownError:
            assert not self.replicas[replica_id].alive
        except CircuitOpenError:
            # The breaker may only reject pushes while it is open or
            # limiting half-open probes — never from the closed state.
            assert self.controller.breaker(replica_id).state != "closed"

    @rule(seconds=st.sampled_from([0.5, 2.0, 10.0]))
    def advance_time(self, seconds):
        """Let breaker reset timeouts elapse (virtually)."""
        self.harness.run(asyncio.sleep(seconds))

    # -- invariants ----------------------------------------------------------

    @invariant()
    def served_exactly_once(self):
        stats = self.controller.stats
        assert stats.failed == 0
        assert (
            stats.local_hits + stats.remote_hits + stats.origin_fetches
            == stats.requests
        )
        assert stats.requests == self.model_requests

    @invariant()
    def index_is_superset_of_replica_contents(self):
        index = self.controller.routing_index()
        for replica in self.replicas.values():
            for video_id in replica.contents():
                assert replica.replica_id in index.get(video_id, set()), (
                    f"{video_id} cached on {replica.replica_id} "
                    "but missing from the routing index"
                )

    @invariant()
    def caches_never_over_capacity(self):
        for replica in self.replicas.values():
            assert len(replica.cache) <= replica.cache.capacity


TestServingStateful = ServingMachine.TestCase
TestServingStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)


# ---------------------------------------------------------------------------
# Overload machine: bounded replicas, admission gate, hedging, region kills
# ---------------------------------------------------------------------------

OVERLOAD_COUNTRIES = ["US", "DE", "FR", "JP"]
OVERLOAD_REPLICA_IDS = [f"edge-{country}" for country in OVERLOAD_COUNTRIES]
#: DE and FR share western-europe, so killing that region is a true
#: multi-replica blackout; the others are single-replica regions.
OVERLOAD_REGIONS = ["north-america", "western-europe", "east-asia"]

priority_strategy = st.sampled_from([0, 1, 2])
region_strategy = st.sampled_from(OVERLOAD_REGIONS)
overload_replica_strategy = st.sampled_from(OVERLOAD_REPLICA_IDS)


class OverloadServingMachine(RuleBasedStateMachine):
    """Random overload + sheds + hedges + regional kills.

    Every request must come back served *or* shed, exactly once:
    ``offered == served + shed`` at the admission gate, and inside the
    controller ``local + remote + origin == requests`` with zero
    failures — a hedge that fires and loses must never double-count its
    request, a shed must never reach the controller, and the routing
    index must stay a superset of every cache through it all.
    """

    def __init__(self):
        super().__init__()
        self.harness = SimulationHarness()
        registry = default_registry()
        self.replicas = {
            f"edge-{country}": Replica(
                f"edge-{country}",
                country,
                LRUCache(4),
                concurrency=2,
                queue_depth=1,
                service_seconds=0.02,
            )
            for country in OVERLOAD_COUNTRIES
        }
        self.controller = Controller(
            Origin(Dataset(VIDEOS, registry=registry)),
            list(self.replicas.values()),
            registry,
            hedge=HedgePolicy(initial_deadline=0.015, min_deadline=0.002),
        )
        self.admission = AdmissionController(
            self.controller, AdmissionPolicy(max_inflight=8, seed=7)
        )
        self.by_region = {}
        for replica in self.replicas.values():
            region = registry.get(replica.country).region
            self.by_region.setdefault(region, []).append(replica)
        self.offered = 0

    def teardown(self):
        self.harness.close()

    # -- actions ------------------------------------------------------------

    @rule(
        video_id=video_strategy,
        country=country_strategy,
        priority=priority_strategy,
        burst=st.integers(min_value=1, max_value=6),
    )
    def serve_burst(self, video_id, country, priority, burst):
        """A concurrent burst — enough to saturate a 2+1 replica."""

        async def run():
            return await asyncio.gather(
                *[
                    self.admission.get(video_id, country, priority=priority)
                    for _ in range(burst)
                ]
            )

        results = self.harness.run(run())
        self.offered += burst
        assert len(results) == burst
        for result in results:
            assert result.video_id == video_id
            if result.shed:
                assert result.reason in ("overload", "saturated")
                assert result.load > 0.0
                assert result.priority == priority
            else:
                assert result.source in ("local", "remote", "origin")
                if result.source != "origin":
                    assert self.replicas[result.served_by].alive

    @rule(region=region_strategy)
    def kill_region(self, region):
        for replica in self.by_region[region]:
            replica.fail()

    @rule(region=region_strategy)
    def revive_region(self, region):
        for replica in self.by_region[region]:
            replica.recover()

    @rule(video_id=video_strategy, replica_id=overload_replica_strategy)
    def push(self, video_id, replica_id):
        try:
            self.harness.run(self.controller.push(replica_id, video_id))
        except ReplicaDownError:
            assert not self.replicas[replica_id].alive
        except CircuitOpenError:
            assert self.controller.breaker(replica_id).state != "closed"

    @rule()
    def probe_health(self):
        self.harness.run(self.controller.probe_health())

    @rule(seconds=st.sampled_from([0.5, 2.0, 10.0]))
    def advance_time(self, seconds):
        self.harness.advance(seconds)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def served_or_shed_exactly_once(self):
        gate = self.admission.stats
        controller = self.controller.stats
        assert gate.offered == self.offered
        assert gate.errors == 0
        assert gate.offered == gate.served + gate.shed
        # Admitted requests reach the controller exactly once — hedged
        # duplicates are probes, never extra requests.
        assert gate.admitted == controller.requests
        assert controller.failed == 0
        assert (
            controller.local_hits
            + controller.remote_hits
            + controller.origin_fetches
            == controller.requests
        )
        shed_split = (
            gate.shed_interactive + gate.shed_standard + gate.shed_background
        )
        assert shed_split == gate.shed

    @invariant()
    def hedges_accounted(self):
        stats = self.controller.stats
        assert stats.hedge_wins <= stats.hedges
        assert stats.hedge_cancelled <= stats.hedges

    @invariant()
    def no_slot_leaks_when_idle(self):
        # Between rules nothing is in flight: every slot and queue
        # position must have drained (a leak here would starve later
        # bursts into permanent overload).
        for replica in self.replicas.values():
            assert replica.waiting == 0
            if replica.alive:
                assert replica.inflight == 0

    @invariant()
    def index_is_superset_of_replica_contents(self):
        index = self.controller.routing_index()
        for replica in self.replicas.values():
            for video_id in replica.contents():
                assert replica.replica_id in index.get(video_id, set()), (
                    f"{video_id} cached on {replica.replica_id} "
                    "but missing from the routing index"
                )

    @invariant()
    def caches_never_over_capacity(self):
        for replica in self.replicas.values():
            assert len(replica.cache) <= replica.cache.capacity


TestOverloadServingStateful = OverloadServingMachine.TestCase
TestOverloadServingStateful.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
