"""Property-based stateful tests for the serving controller.

A Hypothesis state machine drives random interleavings of serve /
kill / revive / push / advance-time against a small origin →
controller → replicas service on a *persistent* virtual-time loop
(:class:`~repro.serving.simtime.SimulationHarness`), and checks the
routing invariants no interleaving may break:

- every request is served exactly once (local + remote + origin
  always equals requests; nothing fails, nothing is double-counted);
- no request is ever served by a dead replica;
- the controller's routing index stays a superset of what each
  replica actually holds (stale entries allowed — they self-heal —
  but never missing entries).
"""

import asyncio

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.datamodel.dataset import Dataset
from repro.datamodel.video import Video
from repro.errors import CircuitOpenError, ReplicaDownError
from repro.placement.cache import LRUCache
from repro.serving import Controller, Origin, Replica, SimulationHarness
from repro.world.countries import default_registry

VIDEOS = [
    Video(
        video_id=f"AAAAAAAAA{i:02d}",
        title=f"video {i}",
        uploader="uploader",
        upload_date="2011-01-01",
        views=100 + i,
        tags=("music",),
    )
    for i in range(6)
]
VIDEO_IDS = [video.video_id for video in VIDEOS]
REPLICA_COUNTRIES = ["US", "BR", "JP"]
REPLICA_IDS = [f"edge-{country}" for country in REPLICA_COUNTRIES]
REQUEST_COUNTRIES = ["US", "BR", "JP", "DE", "FR", "IN"]

video_strategy = st.sampled_from(VIDEO_IDS)
replica_strategy = st.sampled_from(REPLICA_IDS)
country_strategy = st.sampled_from(REQUEST_COUNTRIES)


class ServingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.harness = SimulationHarness()
        registry = default_registry()
        self.origin = Origin(Dataset(VIDEOS, registry=registry))
        self.replicas = {
            f"edge-{country}": Replica(
                f"edge-{country}", country, LRUCache(4)
            )
            for country in REPLICA_COUNTRIES
        }
        self.controller = Controller(
            self.origin, list(self.replicas.values()), registry
        )
        self.model_requests = 0

    def teardown(self):
        self.harness.close()

    # -- actions ------------------------------------------------------------

    @rule(video_id=video_strategy, country=country_strategy)
    def serve(self, video_id, country):
        result = self.harness.run(self.controller.get(video_id, country))
        self.model_requests += 1
        # Exactly once, from a known source.
        assert result.video_id == video_id
        assert result.source in ("local", "remote", "origin")
        # Never served by a dead replica.
        if result.source != "origin":
            assert self.replicas[result.served_by].alive
        else:
            assert result.served_by == "origin"
        assert result.distance_km >= 0.0

    @rule(replica_id=replica_strategy)
    def kill(self, replica_id):
        self.replicas[replica_id].fail()

    @rule(replica_id=replica_strategy)
    def revive(self, replica_id):
        self.replicas[replica_id].recover()

    @rule(video_id=video_strategy, replica_id=replica_strategy)
    def push(self, video_id, replica_id):
        try:
            self.harness.run(self.controller.push(replica_id, video_id))
        except ReplicaDownError:
            assert not self.replicas[replica_id].alive
        except CircuitOpenError:
            # The breaker may only reject pushes while it is open or
            # limiting half-open probes — never from the closed state.
            assert self.controller.breaker(replica_id).state != "closed"

    @rule(seconds=st.sampled_from([0.5, 2.0, 10.0]))
    def advance_time(self, seconds):
        """Let breaker reset timeouts elapse (virtually)."""
        self.harness.run(asyncio.sleep(seconds))

    # -- invariants ----------------------------------------------------------

    @invariant()
    def served_exactly_once(self):
        stats = self.controller.stats
        assert stats.failed == 0
        assert (
            stats.local_hits + stats.remote_hits + stats.origin_fetches
            == stats.requests
        )
        assert stats.requests == self.model_requests

    @invariant()
    def index_is_superset_of_replica_contents(self):
        index = self.controller.routing_index()
        for replica in self.replicas.values():
            for video_id in replica.contents():
                assert replica.replica_id in index.get(video_id, set()), (
                    f"{video_id} cached on {replica.replica_id} "
                    "but missing from the routing index"
                )

    @invariant()
    def caches_never_over_capacity(self):
        for replica in self.replicas.values():
            assert len(replica.cache) <= replica.cache.capacity


TestServingStateful = ServingMachine.TestCase
TestServingStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
