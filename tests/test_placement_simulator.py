"""Tests for the end-to-end cache simulation."""

import pytest

from repro.errors import PlacementError
from repro.placement.cache import LRUCache, StaticCache
from repro.placement.policies import (
    NoPlacement,
    OraclePlacement,
    PriorPlacement,
    TagPredictivePlacement,
)
from repro.placement.simulator import CacheSimulator, default_simulator


@pytest.fixture(scope="module")
def sim_setup(tiny_pipeline, tiny_predictor, tiny_trace):
    universe = tiny_pipeline.universe
    dataset = tiny_pipeline.dataset
    return universe, dataset, tiny_trace(8000, seed=99), tiny_predictor


class TestSimulatorMechanics:
    def test_accounting_consistent(self, sim_setup):
        universe, dataset, trace, _ = sim_setup
        sim = default_simulator(universe.registry, capacity=20)
        report = sim.run(dataset, trace, NoPlacement())
        assert report.requests == len(trace)
        total_lookups = sum(
            stats.requests for stats in report.per_country.values()
        )
        assert total_lookups == len(trace)
        total_hits = sum(stats.hits for stats in report.per_country.values())
        assert report.overall_hit_rate == pytest.approx(
            total_hits / len(trace)
        )

    def test_pins_bounded_by_capacity(self, sim_setup):
        universe, dataset, trace, predictor = sim_setup
        capacity = 15
        sim = CacheSimulator(
            universe.registry,
            lambda: StaticCache(capacity),
            reactive_admission=False,
        )
        report = sim.run(
            dataset, trace, TagPredictivePlacement(predictor, replicas=5)
        )
        assert report.pins <= capacity * len(universe.registry)

    def test_zero_capacity_zero_hits(self, sim_setup):
        universe, dataset, trace, _ = sim_setup
        sim = default_simulator(universe.registry, capacity=0)
        report = sim.run(dataset, trace, NoPlacement())
        assert report.overall_hit_rate == 0.0

    def test_unknown_country_in_policy_rejected(self, sim_setup):
        universe, dataset, trace, _ = sim_setup

        class RoguePolicy(NoPlacement):
            def place(self, video):
                return {"XX": 1.0}

        sim = default_simulator(universe.registry, capacity=5)
        with pytest.raises(PlacementError):
            sim.run(dataset, trace, RoguePolicy())

    def test_report_rows(self, sim_setup):
        universe, dataset, trace, _ = sim_setup
        sim = default_simulator(universe.registry, capacity=5)
        report = sim.run(dataset, trace, NoPlacement())
        rows = dict(report.as_rows())
        assert rows["policy"] == "none"
        assert rows["requests"] == len(trace)

    def test_hit_rate_for_unknown_country_zero(self, sim_setup):
        universe, dataset, trace, _ = sim_setup
        sim = default_simulator(universe.registry, capacity=5)
        report = sim.run(dataset, trace, NoPlacement())
        assert report.hit_rate_for("XX") == 0.0


class TestExperimentShape:
    """The V3 benchmark's qualitative claims, asserted as tests."""

    @pytest.fixture(scope="class")
    def static_reports(self, sim_setup):
        universe, dataset, trace, predictor = sim_setup
        sim = CacheSimulator(
            universe.registry,
            lambda: StaticCache(20),
            reactive_admission=False,
        )
        policies = [
            PriorPlacement(universe.traffic, replicas=8),
            TagPredictivePlacement(predictor, replicas=8),
            OraclePlacement(universe, replicas=8),
        ]
        return {
            report.policy: report
            for report in sim.compare(dataset, trace, policies)
        }

    def test_tags_beat_prior(self, static_reports):
        assert (
            static_reports["tags"].overall_hit_rate
            > static_reports["prior"].overall_hit_rate
        )

    def test_oracle_bounds_tags(self, static_reports):
        assert (
            static_reports["oracle"].overall_hit_rate
            >= static_reports["tags"].overall_hit_rate
        )

    def test_lru_reactive_beats_nothing(self, sim_setup):
        universe, dataset, trace, _ = sim_setup
        lru = default_simulator(universe.registry, capacity=20).run(
            dataset, trace, NoPlacement()
        )
        assert lru.overall_hit_rate > 0.1

    def test_warm_start_helps_lru(self, sim_setup):
        # Hybrid: LRU caches pre-warmed by tag placement never do worse
        # than cold LRU (same trace, same capacity).
        universe, dataset, trace, predictor = sim_setup
        cold = default_simulator(universe.registry, capacity=20).run(
            dataset, trace, NoPlacement()
        )
        warm = default_simulator(universe.registry, capacity=20).run(
            dataset, trace, TagPredictivePlacement(predictor, replicas=8)
        )
        assert warm.overall_hit_rate >= cold.overall_hit_rate - 0.01
