"""Tests for universe persistence."""

import gzip
import json

import numpy as np
import pytest

from repro.errors import DatasetIOError
from repro.synth.io import load_universe, save_universe


@pytest.fixture(scope="module")
def saved_path(tiny_universe, tmp_path_factory):
    path = tmp_path_factory.mktemp("universe") / "world.jsonl.gz"
    written = save_universe(tiny_universe, path)
    assert written == len(tiny_universe)
    return path


class TestRoundtrip:
    def test_same_video_ids_in_order(self, tiny_universe, saved_path):
        loaded = load_universe(saved_path)
        assert loaded.video_ids() == tiny_universe.video_ids()

    def test_ground_truth_preserved(self, tiny_universe, saved_path):
        loaded = load_universe(saved_path)
        for video_id in tiny_universe.video_ids()[:30]:
            original = tiny_universe.get(video_id)
            restored = loaded.get(video_id)
            assert restored.views == original.views
            assert restored.tags == original.tags
            assert restored.popularity == original.popularity
            assert restored.related_ids == original.related_ids
            assert np.allclose(restored.true_shares, original.true_shares)

    def test_config_preserved(self, tiny_universe, saved_path):
        loaded = load_universe(saved_path)
        assert loaded.config == tiny_universe.config

    def test_vocabulary_regenerated_identically(self, tiny_universe, saved_path):
        loaded = load_universe(saved_path)
        assert loaded.vocabulary.names() == tiny_universe.vocabulary.names()

    def test_feeds_behave_identically(self, tiny_universe, saved_path):
        loaded = load_universe(saved_path)
        for country in ("US", "BR", "JP"):
            assert loaded.most_popular(country, 10) == tiny_universe.most_popular(
                country, 10
            )

    def test_loaded_universe_supports_pipeline(self, saved_path):
        from repro.api.service import YoutubeService
        from repro.crawler.snowball import SnowballCrawler

        loaded = load_universe(saved_path)
        result = SnowballCrawler(YoutubeService(loaded), max_videos=30).run()
        assert len(result.dataset) == 30


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetIOError):
            load_universe(tmp_path / "absent.gz")

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(DatasetIOError):
            load_universe(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(
                json.dumps({"format": "repro-universe", "version": 999}) + "\n"
            )
        with pytest.raises(DatasetIOError):
            load_universe(path)

    def test_corrupt_video_line(self, tiny_universe, tmp_path):
        path = tmp_path / "corrupt.gz"
        save_universe(tiny_universe, path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "{broken json\n"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(DatasetIOError, match=":2:"):
            load_universe(path)

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("not gzip")
        with pytest.raises(DatasetIOError):
            load_universe(path)
