"""Unit and property tests for the Chart API data encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chartmap.encoding import (
    EXTENDED_MAX,
    SIMPLE_ALPHABET,
    SIMPLE_MAX,
    decode_extended,
    decode_simple,
    encode_extended,
    encode_simple,
)
from repro.errors import ChartDecodingError, ChartEncodingError


class TestSimpleEncoding:
    def test_alphabet_size_explains_the_papers_61(self):
        # The paper's 0..61 range IS the simple-encoding alphabet.
        assert SIMPLE_MAX == 61
        assert len(SIMPLE_ALPHABET) == 62

    def test_known_values(self):
        assert encode_simple([0, 25, 26, 61]) == "AZa9"

    def test_missing_encoded_as_underscore(self):
        assert encode_simple([None, 0]) == "_A"

    def test_decode_known_values(self):
        assert decode_simple("AZa9") == [0, 25, 26, 61]

    def test_decode_missing(self):
        assert decode_simple("_A") == [None, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ChartEncodingError):
            encode_simple([62])
        with pytest.raises(ChartEncodingError):
            encode_simple([-1])

    def test_non_int_rejected(self):
        with pytest.raises(ChartEncodingError):
            encode_simple([1.5])
        with pytest.raises(ChartEncodingError):
            encode_simple([True])

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ChartDecodingError):
            decode_simple("A!")

    def test_empty_roundtrip(self):
        assert decode_simple(encode_simple([])) == []

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=61))
        )
    )
    def test_roundtrip(self, values):
        assert decode_simple(encode_simple(values)) == values


class TestExtendedEncoding:
    def test_range(self):
        assert EXTENDED_MAX == 4095

    def test_known_values(self):
        assert encode_extended([0, 4095]) == "AA.."

    def test_missing_pair(self):
        assert encode_extended([None]) == "__"
        assert decode_extended("__") == [None]

    def test_out_of_range_rejected(self):
        with pytest.raises(ChartEncodingError):
            encode_extended([4096])

    def test_odd_length_rejected(self):
        with pytest.raises(ChartDecodingError):
            decode_extended("ABC")

    def test_invalid_pair_rejected(self):
        with pytest.raises(ChartDecodingError):
            decode_extended("A!")

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=4095))
        )
    )
    def test_roundtrip(self, values):
        assert decode_extended(encode_extended(values)) == values
