"""Tests for the write-ahead checkpoint journal.

The property test at the bottom is the crash-safety contract: a journal
file truncated at *any* byte offset either loads a previous durable
state or raises :class:`CheckpointError` — never a partial/invented
state.
"""

import shutil

import pytest

from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.stats import CrawlStats
from repro.durability.journal import (
    CheckpointJournal,
    WAL_MAGIC,
    _WAL_PREAMBLE,
)
from repro.errors import CheckpointError


def batch(i, popped=0):
    """A small, deterministic batch delta (no videos: keeps frames tiny)."""
    return dict(
        popped=popped,
        admitted=[(f"VID{i:08d}", i)],
        videos=[],
        stats=CrawlStats(fetched=i),
        seeded=True,
    )


def state_of(checkpoint):
    """Comparable digest of a loaded checkpoint (None-safe)."""
    if checkpoint is None:
        return None
    return (
        tuple(checkpoint.pending),
        tuple(checkpoint.admitted),
        checkpoint.stats.fetched,
        checkpoint.seeded,
    )


class TestAppendAndLoad:
    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointJournal(tmp_path).load() is None

    def test_roundtrip_replays_batches(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.append_batch(**batch(2, popped=1))
        journal.close()

        loaded = CheckpointJournal(tmp_path).load()
        assert loaded is not None
        assert loaded.admitted == ["VID00000001", "VID00000002"]
        assert loaded.pending == [("VID00000002", 2)]
        assert loaded.stats.fetched == 2
        assert loaded.seeded

    def test_counters(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.append_batch(**batch(2))
        assert journal.records_appended == 2
        journal.close()
        reader = CheckpointJournal(tmp_path)
        reader.load()
        assert reader.records_replayed == 2

    def test_append_after_load_continues(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.close()
        journal = CheckpointJournal(tmp_path)
        journal.load()
        journal.append_batch(**batch(2))
        journal.close()
        loaded = CheckpointJournal(tmp_path).load()
        assert loaded.admitted == ["VID00000001", "VID00000002"]

    def test_reset_clears_everything(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.reset()
        assert CheckpointJournal(tmp_path).load() is None

    def test_over_pop_is_corruption(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1, popped=5))
        journal.close()
        with pytest.raises(CheckpointError):
            CheckpointJournal(tmp_path).load()


class TestCompaction:
    def _checkpoint(self, journal, registry=None):
        return CheckpointJournal(journal.directory).load(registry)

    def test_snapshot_preserves_state_and_clears_wal(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.append_batch(**batch(2))
        before = state_of(CheckpointJournal(tmp_path).load())
        journal.write_snapshot(CheckpointJournal(tmp_path).load())
        assert not journal.wal_path.exists()
        assert journal.snapshots_written == 1
        journal.close()
        assert state_of(CheckpointJournal(tmp_path).load()) == before

    def test_appends_resume_after_snapshot(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.write_snapshot(CheckpointJournal(tmp_path).load())
        journal.append_batch(**batch(2))
        journal.close()
        loaded = CheckpointJournal(tmp_path).load()
        assert loaded.admitted == ["VID00000001", "VID00000002"]

    def test_maybe_compact_honours_threshold(self, tmp_path):
        journal = CheckpointJournal(tmp_path, compact_every=2)
        factory = lambda: CheckpointJournal(tmp_path).load()  # noqa: E731
        journal.append_batch(**batch(1))
        assert not journal.maybe_compact(factory)
        journal.append_batch(**batch(2))
        assert journal.maybe_compact(factory)
        assert journal.snapshots_written == 1

    def test_stale_wal_from_crashed_compaction_is_ignored(self, tmp_path):
        """Snapshot written, crash before WAL clear: no double-apply."""
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.close()
        wal_bytes = journal.wal_path.read_bytes()  # epoch-0 WAL
        journal = CheckpointJournal(tmp_path)
        journal.write_snapshot(journal.load())  # epoch-1 snapshot, WAL cleared
        journal.close()
        # Simulate the crash window: the old WAL is still on disk.
        journal.wal_path.write_bytes(wal_bytes)
        loaded = CheckpointJournal(tmp_path).load()
        assert loaded.admitted == ["VID00000001"]
        assert loaded.pending == [("VID00000001", 1)]  # applied exactly once

    def test_wal_newer_than_snapshot_is_corruption(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.append_batch(**batch(1))
        journal.write_snapshot(journal.load())
        journal.append_batch(**batch(2))  # epoch-1 WAL
        journal.close()
        wal_bytes = journal.wal_path.read_bytes()
        # Roll the snapshot back to the epoch-0 original? Simplest valid
        # forgery: delete the snapshot so epoch 0 is assumed.
        journal.snapshot_path.unlink()
        from repro.durability.artifacts import checksum_path

        checksum_path(journal.snapshot_path).unlink()
        journal.wal_path.write_bytes(wal_bytes)
        with pytest.raises(CheckpointError, match="epoch"):
            CheckpointJournal(tmp_path).load()


class TestCorruptionAndRecovery:
    def _journal_with_batches(self, tmp_path, n=3):
        journal = CheckpointJournal(tmp_path)
        for i in range(1, n + 1):
            journal.append_batch(**batch(i))
        journal.close()
        return journal

    def test_crc_flip_raises_strict(self, tmp_path):
        journal = self._journal_with_batches(tmp_path)
        blob = bytearray(journal.wal_path.read_bytes())
        blob[_WAL_PREAMBLE + 20] ^= 0x01  # inside the first payload
        journal.wal_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            CheckpointJournal(tmp_path).load()

    def test_crc_flip_recovers_to_nothing_without_snapshot(self, tmp_path):
        journal = self._journal_with_batches(tmp_path)
        blob = bytearray(journal.wal_path.read_bytes())
        blob[_WAL_PREAMBLE + 20] ^= 0x01
        journal.wal_path.write_bytes(bytes(blob))
        reader = CheckpointJournal(tmp_path)
        assert reader.load(recover=True) is None
        assert any("journal.wal" in str(p) for p in reader.quarantined)

    def test_crc_flip_recovers_to_snapshot(self, tmp_path):
        journal = self._journal_with_batches(tmp_path, n=1)
        journal = CheckpointJournal(tmp_path)
        journal.write_snapshot(journal.load())
        journal.append_batch(**batch(2))
        journal.close()
        blob = bytearray(journal.wal_path.read_bytes())
        blob[-3] ^= 0x01
        journal.wal_path.write_bytes(bytes(blob))
        reader = CheckpointJournal(tmp_path)
        loaded = reader.load(recover=True)
        assert loaded is not None
        assert loaded.admitted == ["VID00000001"]  # snapshot state only
        assert reader.quarantined

    def test_corrupt_snapshot_raises_strict(self, tmp_path):
        journal = self._journal_with_batches(tmp_path, n=1)
        journal = CheckpointJournal(tmp_path)
        journal.write_snapshot(journal.load())
        journal.close()
        blob = bytearray(journal.snapshot_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        journal.snapshot_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="snapshot"):
            CheckpointJournal(tmp_path).load()

    def test_corrupt_snapshot_recovery_quarantines_both(self, tmp_path):
        journal = self._journal_with_batches(tmp_path, n=1)
        journal = CheckpointJournal(tmp_path)
        journal.write_snapshot(journal.load())
        journal.append_batch(**batch(2))
        journal.close()
        blob = bytearray(journal.snapshot_path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        journal.snapshot_path.write_bytes(bytes(blob))
        reader = CheckpointJournal(tmp_path)
        # The WAL's deltas are meaningless without their base snapshot.
        assert reader.load(recover=True) is None
        names = {p.name for p in reader.quarantined}
        assert "snapshot.ckpt.json.quarantined" in names
        assert "journal.wal.quarantined" in names

    def test_bad_magic_raises(self, tmp_path):
        journal = self._journal_with_batches(tmp_path)
        blob = bytearray(journal.wal_path.read_bytes())
        blob[0:8] = b"NOTAJRNL"
        journal.wal_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="magic"):
            CheckpointJournal(tmp_path).load()


class TestTruncationProperty:
    """Satellite: cut the WAL at EVERY byte offset; the load must yield a
    previous durable state (a strict prefix of the batches) or raise
    CheckpointError — never a partial or invented state."""

    def test_wal_truncated_at_every_offset(self, tmp_path):
        source = tmp_path / "source"
        journal = CheckpointJournal(source)
        valid_states = {None}
        boundary_states = [None]
        for i in range(1, 4):
            journal.append_batch(**batch(i, popped=1 if i > 1 else 0))
            journal.close()
            loaded = state_of(CheckpointJournal(source).load())
            valid_states.add(loaded)
            boundary_states.append(loaded)
            journal = CheckpointJournal(source)
            journal.load()
        journal.close()

        wal_bytes = (source / CheckpointJournal.WAL_NAME).read_bytes()
        work = tmp_path / "work"
        for cut in range(len(wal_bytes)):
            if work.exists():
                shutil.rmtree(work)
            work.mkdir()
            (work / CheckpointJournal.WAL_NAME).write_bytes(wal_bytes[:cut])
            loaded = state_of(CheckpointJournal(work).load())
            assert loaded in valid_states, (
                f"truncation at byte {cut} produced a state outside the "
                f"durable history: {loaded}"
            )
        # Sanity: the untruncated file loads the final state.
        assert state_of(CheckpointJournal(source).load()) == boundary_states[-1]

    def test_snapshot_truncated_at_every_offset(self, tmp_path):
        source = tmp_path / "source"
        journal = CheckpointJournal(source)
        journal.append_batch(**batch(1))
        journal.write_snapshot(journal.load())
        journal.close()
        full_state = state_of(CheckpointJournal(source).load())
        snap_bytes = journal.snapshot_path.read_bytes()
        sidecar = journal.snapshot_path.with_name(
            journal.snapshot_path.name + ".sha256"
        ).read_bytes()

        work = tmp_path / "work"
        for cut in range(len(snap_bytes)):
            if work.exists():
                shutil.rmtree(work)
            work.mkdir()
            (work / CheckpointJournal.SNAPSHOT_NAME).write_bytes(
                snap_bytes[:cut]
            )
            (work / (CheckpointJournal.SNAPSHOT_NAME + ".sha256")).write_bytes(
                sidecar
            )
            reader = CheckpointJournal(work)
            # A truncated snapshot is corruption (checksummed artifact):
            # strict load must refuse, recovering load must fall back to
            # "nothing durable" — never a partial state.
            with pytest.raises(CheckpointError):
                reader.load()
            recoverer = CheckpointJournal(work)
            assert recoverer.load(recover=True) is None
        assert state_of(CheckpointJournal(source).load()) == full_state
