"""Tests for dataset auditing."""

import pytest

from repro.datamodel.audit import audit_dataset
from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video

IDS = [f"AAAAAAAAA{i:02d}" for i in range(10)]


def video(video_id, **overrides):
    defaults = dict(
        video_id=video_id,
        title="ok",
        uploader="u",
        upload_date="2010-06-01",
        views=100,
        tags=("music",),
        popularity=PopularityVector({"US": 61}),
        related_ids=(),
    )
    defaults.update(overrides)
    return Video(**defaults)


class TestCleanDataset:
    def test_clean_corpus_has_no_findings(self):
        report = audit_dataset(Dataset([video(IDS[0]), video(IDS[1])]))
        assert report.clean
        assert report.videos == 2

    def test_crawled_corpus_mostly_clean(self, tiny_pipeline):
        # Dangling related ids are expected in a partial crawl; nothing
        # else should fire on the simulated world.
        report = audit_dataset(tiny_pipeline.dataset, check_references=False)
        assert report.clean


class TestAnomalies:
    def test_unsaturated_map_detected(self):
        report = audit_dataset(
            Dataset([video(IDS[0], popularity=PopularityVector({"US": 30}))])
        )
        finding = report.finding("unsaturated-map")
        assert finding.count == 1
        assert IDS[0] in finding.examples

    def test_date_out_of_window(self):
        report = audit_dataset(Dataset([video(IDS[0], upload_date="2015-01-01")]))
        assert report.finding("date-out-of-window").count == 1

    def test_date_before_youtube(self):
        report = audit_dataset(Dataset([video(IDS[0], upload_date="2004-01-01")]))
        assert report.finding("date-out-of-window").count == 1

    def test_empty_title(self):
        report = audit_dataset(Dataset([video(IDS[0], title="   ")]))
        assert report.finding("empty-title").count == 1

    def test_zero_views_wide_map(self):
        wide = PopularityVector(
            {code: 61 for code in ("US", "BR", "JP", "DE", "FR", "GB")}
        )
        report = audit_dataset(
            Dataset([video(IDS[0], views=0, popularity=wide)])
        )
        assert report.finding("zero-views-wide-map").count == 1

    def test_dangling_related_ids(self):
        report = audit_dataset(
            Dataset([video(IDS[0], related_ids=(IDS[9],))])
        )
        assert report.finding("dangling-related-ids").count == 1

    def test_references_check_optional(self):
        report = audit_dataset(
            Dataset([video(IDS[0], related_ids=(IDS[9],))]),
            check_references=False,
        )
        assert report.clean

    def test_examples_capped_at_five(self):
        videos = [
            video(IDS[i], upload_date="2015-01-01") for i in range(8)
        ]
        report = audit_dataset(Dataset(videos))
        finding = report.finding("date-out-of-window")
        assert finding.count == 8
        assert len(finding.examples) == 5

    def test_unknown_code_raises(self):
        report = audit_dataset(Dataset([video(IDS[0])]))
        with pytest.raises(KeyError):
            report.finding("nope")

    def test_rows_render(self):
        report = audit_dataset(Dataset([video(IDS[0], title="")]))
        labels = [label for label, _ in report.as_rows()]
        assert "empty-title" in labels
