"""Property-based stateful tests for the edge caches.

A hypothesis state machine drives random interleavings of request /
admit / pin against each cache flavour and checks the invariants no
sequence may break: capacity is never exceeded, hit/miss counters add
up, a hit is only ever reported for a key that was actually inserted and
not yet evicted (tracked by a model set).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.placement.cache import LFUCache, LRUCache, StaticCache

KEYS = [f"AAAAAAAAA{i:02d}" for i in range(12)]
key_strategy = st.sampled_from(KEYS)


class CacheMachine(RuleBasedStateMachine):
    """Drives one cache; subclasses pick the flavour and capacity."""

    cache_factory = None  # set by subclass

    def __init__(self):
        super().__init__()
        self.cache = type(self).cache_factory()
        self.model_contents = set()
        self.model_hits = 0
        self.model_misses = 0

    # -- actions ------------------------------------------------------------

    @rule(key=key_strategy)
    def request(self, key):
        hit = self.cache.request(key)
        if hit:
            self.model_hits += 1
        else:
            self.model_misses += 1
        # A hit may only be reported for modelled contents.
        assert hit == (key in self.model_contents)

    @rule(key=key_strategy)
    def admit(self, key):
        before = set(self.model_contents)
        self.cache.admit(key)
        self._sync_model(before, key, via_pin=False)

    @rule(key=key_strategy)
    def pin(self, key):
        before = set(self.model_contents)
        self.cache.pin(key)
        self._sync_model(before, key, via_pin=True)

    def _sync_model(self, before, key, via_pin):
        # Recompute the model from the cache's observable state: the
        # eviction victim is implementation-defined per flavour, so the
        # model tracks membership through __contains__ (public API) and
        # only asserts *global* invariants elsewhere.
        self.model_contents = {k for k in KEYS if k in self.cache}
        if isinstance(self.cache, StaticCache) and not via_pin:
            assert self.model_contents == before  # admit is a no-op
        if self.cache.capacity > 0 and via_pin:
            if len(before) < self.cache.capacity or key in before:
                assert key in self.model_contents or isinstance(
                    self.cache, StaticCache
                ) and len(before) >= self.cache.capacity

    # -- invariants -----------------------------------------------------------

    @invariant()
    def never_over_capacity(self):
        assert len(self.cache) <= self.cache.capacity

    @invariant()
    def counters_add_up(self):
        stats = self.cache.stats
        assert stats.hits + stats.misses == stats.requests
        assert stats.hits == self.model_hits
        assert stats.misses == self.model_misses

    @invariant()
    def membership_matches_model(self):
        assert {k for k in KEYS if k in self.cache} == self.model_contents


class LRUMachine(CacheMachine):
    cache_factory = staticmethod(lambda: LRUCache(4))


class LFUMachine(CacheMachine):
    cache_factory = staticmethod(lambda: LFUCache(4))


class StaticMachine(CacheMachine):
    cache_factory = staticmethod(lambda: StaticCache(4))


class ZeroCapacityMachine(CacheMachine):
    cache_factory = staticmethod(lambda: LRUCache(0))


TestLRUStateful = LRUMachine.TestCase
TestLFUStateful = LFUMachine.TestCase
TestStaticStateful = StaticMachine.TestCase
TestZeroCapacityStateful = ZeroCapacityMachine.TestCase

for testcase in (
    TestLRUStateful,
    TestLFUStateful,
    TestStaticStateful,
    TestZeroCapacityStateful,
):
    testcase.settings = settings(
        max_examples=30, stateful_step_count=40, deadline=None
    )
