"""Incremental engine: delta ingestion is bit-identical to cold rebuilds.

The contract under test (ISSUE tentpole): after ANY sequence of
timestamped delta batches — view deltas, new-video arrivals, never-seen
tags, funnel-dropped videos — the :class:`IncrementalEngine` state is
bit-identical (float64) to :func:`cold_rebuild` on the cumulative
snapshot, and invariant to how the stream is chunked. Hypothesis drives
random streams through both paths; the deterministic tests cover the
temporal presets end to end plus every error path.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.incremental import (
    METRIC_NAMES,
    DeltaBatch,
    IncrementalEngine,
    batch_from_chunk,
    cold_rebuild,
)
from repro.errors import IncrementalStateError
from repro.synth.temporal import make_temporal
from repro.world.countries import default_registry

_REGISTRY = default_registry()
_CODES = _REGISTRY.codes()
_N_C = len(_CODES)
#: Small sub-axis for sparse popularity rows (full axis stays _N_C wide).
_POP_CODES = _CODES[:10]
_CODE_INDEX = {code: i for i, code in enumerate(_CODES)}
_TAG_POOL = ("music", "live", "cats", "how to", "vlog")


def _vid(i):
    return f"vid{i:08d}"


def _pop_row(intensities):
    row = np.zeros(_N_C, dtype=np.float64)
    for code, value in intensities.items():
        row[_CODE_INDEX[code]] = value
    return row


def _arrival_batch(timestamp, arrivals):
    """Build a DeltaBatch from [(id, views, pop_row, has_map, tags)]."""
    if not arrivals:
        return DeltaBatch(timestamp=timestamp)
    tags = [tag for entry in arrivals for tag in entry[4]]
    indptr = np.cumsum([0] + [len(entry[4]) for entry in arrivals])
    return DeltaBatch(
        timestamp=timestamp,
        new_video_ids=np.array([entry[0] for entry in arrivals]),
        new_views=np.array([entry[1] for entry in arrivals], dtype=np.int64),
        new_pop=np.stack([entry[2] for entry in arrivals]),
        new_has_map=np.array([entry[3] for entry in arrivals], dtype=bool),
        new_tag_indptr=indptr.astype(np.int64),
        new_tags=np.array(tags) if tags else np.empty(0, dtype="<U1"),
    )


def _delta_batch(timestamp, deltas):
    """Build a delta-only batch from [(video_id, delta)]."""
    return DeltaBatch(
        timestamp=timestamp,
        video_ids=np.array([vid for vid, _ in deltas])
        if deltas
        else np.empty(0, dtype="<U1"),
        view_deltas=np.array(
            [delta for _, delta in deltas], dtype=np.int64
        ),
    )


def _simple_engine(**kwargs):
    engine = IncrementalEngine(**kwargs)
    engine.apply(
        _arrival_batch(
            0.0,
            [
                (_vid(0), 100, _pop_row({"US": 5, "BR": 2}), True, ("music", "live")),
                (_vid(1), 40, _pop_row({"JP": 7}), True, ("music",)),
                (_vid(2), 0, _pop_row({}), False, ("cats",)),
            ],
        )
    )
    return engine


def _dedupe_keep_first(tags):
    seen, out = set(), []
    for tag in tags:
        if tag not in seen:
            seen.add(tag)
            out.append(tag)
    return out


def _oracle_arrays(truth):
    """(pop, views, indptr, names) for the eligible rows of a truth list."""
    pop = np.stack([row for row, _, _ in truth]) if truth else np.empty((0, _N_C))
    views = np.array([v for _, v, _ in truth], dtype=np.int64)
    names = [tag for _, _, tags in truth for tag in tags]
    indptr = np.cumsum([0] + [len(tags) for _, _, tags in truth]).astype(np.int64)
    return pop, views, indptr, np.array(names) if names else np.empty(0, "<U1")


def _assert_matches_oracle(engine, oracle):
    assert engine.tags == oracle.tags
    assert np.array_equal(engine.tag_views, oracle.tag_views)
    assert np.array_equal(engine.est, oracle.est)


# -- deterministic unit coverage ---------------------------------------------


class TestApplyBasics:
    def test_empty_engine(self):
        engine = IncrementalEngine()
        assert engine.n_videos == 0
        assert engine.n_tags == 0
        assert engine.n_countries == _N_C
        assert engine.tag_views.shape == (0, _N_C)
        assert engine.last_timestamp is None

    def test_arrivals_register_state(self):
        engine = _simple_engine()
        assert engine.n_videos == 2  # the has_map=False row is dropped
        assert engine.videos_skipped == 1
        assert engine.video_ids == (_vid(0), _vid(1))
        # First-seen vocabulary order; the skipped row's tag never lands.
        assert engine.tags == ("music", "live")
        assert list(engine.views) == [100, 40]
        assert engine.row_of(_vid(1)) == 1
        assert list(engine.tag_members(engine.tag_id("music"))) == [0, 1]
        assert list(engine.video_tags(0)) == [0, 1]

    def test_deltas_sum_including_duplicates(self):
        engine = _simple_engine()
        engine.apply(
            _delta_batch(1.0, [(_vid(0), 10), (_vid(0), 5), (_vid(1), 1)])
        )
        assert list(engine.views) == [115, 41]
        assert engine.deltas_applied == 3

    def test_arrival_and_delta_same_batch(self):
        engine = _simple_engine()
        batch = _arrival_batch(
            1.0, [(_vid(9), 7, _pop_row({"FR": 3}), True, ("vlog",))]
        )
        batch = DeltaBatch(
            timestamp=1.0,
            video_ids=np.array([_vid(9)]),
            view_deltas=np.array([3], dtype=np.int64),
            new_video_ids=batch.new_video_ids,
            new_views=batch.new_views,
            new_pop=batch.new_pop,
            new_has_map=batch.new_has_map,
            new_tag_indptr=batch.new_tag_indptr,
            new_tags=batch.new_tags,
        )
        result = engine.apply(batch)
        assert engine.views[engine.row_of(_vid(9))] == 10
        row = engine.row_of(_vid(9))
        where = list(result.touched_rows).index(row)
        assert result.row_views_added[where] == 10

    def test_deltas_to_funnel_dropped_videos_are_ignored(self):
        engine = _simple_engine()
        result = engine.apply(_delta_batch(1.0, [(_vid(2), 50), (_vid(0), 1)]))
        assert result.n_deltas_ignored == 1
        assert result.n_deltas == 1
        assert engine.deltas_ignored == 1
        assert list(engine.views) == [101, 40]

    def test_apply_result_shape(self):
        engine = _simple_engine()
        result = engine.apply(_delta_batch(2.0, [(_vid(1), 6)]))
        assert list(result.touched_rows) == [1]
        assert list(result.row_views_added) == [6]
        assert result.timestamp == 2.0
        assert set(result.touched_tags) == {engine.tag_id("music")}


class TestErrorPaths:
    def test_time_backwards_raises(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match="time ran backwards"):
            engine.apply(_delta_batch(-1.0, [(_vid(0), 1)]))

    def test_unknown_video_raises(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match="unknown"):
            engine.apply(_delta_batch(1.0, [(_vid(77), 1)]))

    def test_negative_cumulative_views_raises(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match="below zero"):
            engine.apply(_delta_batch(1.0, [(_vid(1), -41 - 1)]))

    def test_negative_correction_within_bounds_is_fine(self):
        engine = _simple_engine()
        engine.apply(_delta_batch(1.0, [(_vid(1), -40)]))
        assert engine.views[1] == 0

    def test_duplicate_arrival_raises(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match=_vid(0)):
            engine.apply(
                _arrival_batch(
                    1.0, [(_vid(0), 1, _pop_row({"US": 1}), True, ())]
                )
            )

    def test_mismatched_delta_lengths_raise(self):
        engine = IncrementalEngine()
        batch = DeltaBatch(
            timestamp=0.0,
            video_ids=np.array([_vid(0)]),
            view_deltas=np.empty(0, dtype=np.int64),
        )
        with pytest.raises(IncrementalStateError, match="delta"):
            engine.apply(batch)

    def test_missing_new_pop_raises(self):
        engine = IncrementalEngine()
        batch = DeltaBatch(
            timestamp=0.0,
            new_video_ids=np.array([_vid(0)]),
            new_views=np.array([1], dtype=np.int64),
        )
        with pytest.raises(IncrementalStateError, match="new_pop"):
            engine.apply(batch)

    def test_bad_tag_indptr_raises(self):
        engine = IncrementalEngine()
        batch = DeltaBatch(
            timestamp=0.0,
            new_video_ids=np.array([_vid(0)]),
            new_views=np.array([1], dtype=np.int64),
            new_pop=np.zeros((1, _N_C)),
            new_tag_indptr=np.array([0, 5], dtype=np.int64),
            new_tags=np.array(["music"]),
        )
        with pytest.raises(IncrementalStateError, match="indptr"):
            engine.apply(batch)

    def test_negative_eager_limit_raises(self):
        with pytest.raises(IncrementalStateError, match="eager_degree_limit"):
            IncrementalEngine(eager_degree_limit=-1)

    def test_metric_without_tracking_raises(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match="track_metrics"):
            engine.metric("entropy")

    def test_unknown_metric_raises(self):
        engine = _simple_engine(track_metrics=True)
        with pytest.raises(IncrementalStateError, match="unknown metric"):
            engine.metric("sharpe")

    def test_unknown_lookups_raise(self):
        engine = _simple_engine()
        with pytest.raises(IncrementalStateError, match="unknown video"):
            engine.row_of("nope")
        with pytest.raises(IncrementalStateError, match="unknown tag"):
            engine.tag_id("nope")


class TestDeferral:
    def test_default_defers_every_touched_tag(self):
        engine = _simple_engine()  # default eager_degree_limit=0
        result = engine.apply(_delta_batch(1.0, [(_vid(0), 5)]))
        assert result.n_tags_deferred == len(result.touched_tags) > 0
        assert engine.dirty_tag_count > 0
        # Reading the table flushes; the read is exact.
        _ = engine.tag_views
        assert engine.dirty_tag_count == 0
        assert engine.flushes >= 1

    def test_eager_none_never_defers(self):
        engine = _simple_engine(eager_degree_limit=None)
        result = engine.apply(_delta_batch(1.0, [(_vid(0), 5)]))
        assert result.n_tags_deferred == 0
        assert engine.dirty_tag_count == 0

    def test_positive_limit_splits_by_degree(self):
        # "music" has 2 members, "live" has 1; limit 1 defers only music.
        engine = _simple_engine(eager_degree_limit=1)
        result = engine.apply(_delta_batch(1.0, [(_vid(0), 5)]))
        assert result.n_tags_deferred == 1
        assert engine.dirty_tag_count == 1
        assert engine.tag_id("music") in engine._dirty_tags

    def test_flush_returns_count_and_is_idempotent(self):
        engine = _simple_engine()
        engine.apply(_delta_batch(1.0, [(_vid(0), 5)]))
        assert engine.flush() == 2  # music + live
        assert engine.flush() == 0


class TestAgainstOracle:
    def test_simple_state_matches_cold_rebuild(self):
        engine = _simple_engine(track_metrics=True)
        engine.apply(_delta_batch(1.0, [(_vid(0), 23), (_vid(1), 7)]))
        truth = [
            (_pop_row({"US": 5, "BR": 2}), 123, ["music", "live"]),
            (_pop_row({"JP": 7}), 47, ["music"]),
        ]
        oracle = cold_rebuild(*_oracle_arrays(truth), track_metrics=True)
        _assert_matches_oracle(engine, oracle)
        for name in METRIC_NAMES:
            assert np.array_equal(engine.metric(name), oracle.metrics[name])

    def test_rebuild_oracle_and_to_columnar_agree(self):
        engine = _simple_engine()
        engine.apply(_delta_batch(1.0, [(_vid(0), 9)]))
        assert np.array_equal(engine.tag_views, engine.rebuild_oracle())
        columnar = engine.to_columnar()
        assert columnar.n_videos == engine.n_videos
        assert tuple(columnar.tags) == engine.tags

    def test_tiny_temporal_stream_is_bit_identical(self):
        stream = make_temporal("tiny-temporal")
        engine = IncrementalEngine(track_metrics=True)
        for batch in stream.iter_batches():
            engine.apply(batch)
        oracle = cold_rebuild(*stream.snapshot_eligible(), track_metrics=True)
        _assert_matches_oracle(engine, oracle)
        for name in METRIC_NAMES:
            assert np.array_equal(engine.metric(name), oracle.metrics[name])

    def test_chunking_invariance_on_temporal_stream(self):
        """Splitting every batch's deltas in half changes nothing."""
        stream = make_temporal("tiny-temporal")
        whole = IncrementalEngine()
        halves = IncrementalEngine()
        for batch in stream.iter_batches():
            whole.apply(batch)
            mid = batch.n_deltas // 2
            halves.apply(
                DeltaBatch(
                    timestamp=batch.timestamp,
                    video_ids=batch.video_ids[:mid],
                    view_deltas=batch.view_deltas[:mid],
                    new_video_ids=batch.new_video_ids,
                    new_views=batch.new_views,
                    new_pop=batch.new_pop,
                    new_has_map=batch.new_has_map,
                    new_tag_indptr=batch.new_tag_indptr,
                    new_tags=batch.new_tags,
                )
            )
            halves.apply(
                DeltaBatch(
                    timestamp=batch.timestamp,
                    video_ids=batch.video_ids[mid:],
                    view_deltas=batch.view_deltas[mid:],
                )
            )
        assert whole.tags == halves.tags
        assert np.array_equal(whole.views, halves.views)
        assert np.array_equal(whole.tag_views, halves.tag_views)
        assert np.array_equal(whole.est, halves.est)

    def test_batch_from_chunk_bootstraps_an_engine(self):
        stream = make_temporal("tiny-temporal")
        from repro.synth.stream import StreamingUniverse

        universe = StreamingUniverse(stream.config)
        engine = IncrementalEngine()
        for i, chunk in enumerate(universe.iter_chunks()):
            engine.apply(
                batch_from_chunk(chunk, universe.tag_names, timestamp=float(i))
            )
        assert engine.n_videos > 0
        assert np.array_equal(engine.tag_views, engine.rebuild_oracle())


# -- property suite: random streams vs the cold oracle ------------------------


@st.composite
def delta_streams(draw):
    """A random batch stream plus its cumulative eligible truth."""
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    truth = []  # (pop_row, cumulative_views, deduped_tags) per eligible row
    row_of = {}
    skipped = []
    counter = 0
    for step in range(n_batches):
        arrivals = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            has_map = draw(st.booleans())
            # An eligible video has a non-empty popularity vector (the
            # funnel drops empty/missing maps as has_map=False).
            intensities = draw(
                st.dictionaries(
                    st.sampled_from(_POP_CODES),
                    st.integers(min_value=1, max_value=50),
                    min_size=1 if has_map else 0,
                    max_size=4,
                )
            )
            tags = tuple(
                draw(
                    st.lists(
                        st.sampled_from(_TAG_POOL), min_size=0, max_size=4
                    )
                )
            )
            views = draw(st.sampled_from((0, 1, 13, 40_000)))
            vid = _vid(counter)
            counter += 1
            arrivals.append((vid, views, _pop_row(intensities), has_map, tags))
            if has_map:
                row_of[vid] = len(truth)
                truth.append(
                    [_pop_row(intensities), views, _dedupe_keep_first(tags)]
                )
            else:
                skipped.append(vid)
        deltas = []
        known = list(row_of) + skipped
        if known:
            for _ in range(draw(st.integers(min_value=0, max_value=4))):
                vid = known[draw(st.integers(0, len(known) - 1))]
                delta = draw(st.integers(min_value=0, max_value=10_000))
                deltas.append((vid, delta))
                if vid in row_of:
                    truth[row_of[vid]][1] += delta
        arrival = _arrival_batch(float(step), arrivals)
        batches.append(
            DeltaBatch(
                timestamp=float(step),
                video_ids=np.array([vid for vid, _ in deltas])
                if deltas
                else np.empty(0, dtype="<U1"),
                view_deltas=np.array(
                    [d for _, d in deltas], dtype=np.int64
                ),
                new_video_ids=arrival.new_video_ids,
                new_views=arrival.new_views,
                new_pop=arrival.new_pop,
                new_has_map=arrival.new_has_map,
                new_tag_indptr=arrival.new_tag_indptr,
                new_tags=arrival.new_tags,
            )
        )
    return batches, truth


@given(delta_streams())
def test_property_incremental_equals_cold_rebuild(stream):
    """Any stream, any eager limit: state is bit-identical to the oracle."""
    batches, truth = stream
    engines = {
        "deferred": IncrementalEngine(track_metrics=True),
        "eager": IncrementalEngine(track_metrics=True, eager_degree_limit=None),
        "mixed": IncrementalEngine(track_metrics=True, eager_degree_limit=2),
    }
    for batch in batches:
        for engine in engines.values():
            engine.apply(batch)
    oracle = cold_rebuild(*_oracle_arrays(truth), track_metrics=True)
    for engine in engines.values():
        _assert_matches_oracle(engine, oracle)
        for name in METRIC_NAMES:
            assert np.array_equal(engine.metric(name), oracle.metrics[name])


@given(delta_streams())
def test_property_chunking_invariance(stream):
    """Arrivals-then-deltas split of every batch leaves identical bits."""
    batches, _ = stream
    whole = IncrementalEngine()
    split = IncrementalEngine()
    for batch in batches:
        whole.apply(batch)
        split.apply(
            DeltaBatch(
                timestamp=batch.timestamp,
                new_video_ids=batch.new_video_ids,
                new_views=batch.new_views,
                new_pop=batch.new_pop,
                new_has_map=batch.new_has_map,
                new_tag_indptr=batch.new_tag_indptr,
                new_tags=batch.new_tags,
            )
        )
        split.apply(
            DeltaBatch(
                timestamp=batch.timestamp,
                video_ids=batch.video_ids,
                view_deltas=batch.view_deltas,
            )
        )
    assert whole.tags == split.tags
    assert whole.video_ids == split.video_ids
    assert np.array_equal(whole.views, split.views)
    assert np.array_equal(whole.tag_views, split.tag_views)
    assert np.array_equal(whole.est, split.est)
