"""Unit tests for the Universe facade and presets."""

import numpy as np
import pytest

from repro.errors import ConfigError, UnknownCountryError
from repro.synth.presets import PRESETS, preset_config
from repro.synth.universe import UniverseConfig, build_universe


class TestUniverseBasics:
    def test_size_matches_config(self, tiny_universe):
        assert len(tiny_universe) == tiny_universe.config.n_videos

    def test_lookup_roundtrip(self, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        assert tiny_universe.get(video_id).video_id == video_id
        assert video_id in tiny_universe

    def test_unknown_video_rejected(self, tiny_universe):
        with pytest.raises(ConfigError):
            tiny_universe.get("AAAAAAAAAAA")

    def test_deterministic_given_seed(self):
        config = UniverseConfig(n_videos=50, n_tags=60, seed=77)
        a = build_universe(config)
        b = build_universe(config)
        assert a.video_ids() == b.video_ids()
        for video_id in a.video_ids()[:10]:
            assert np.array_equal(
                a.get(video_id).true_shares, b.get(video_id).true_shares
            )

    def test_different_seeds_differ(self):
        a = build_universe(UniverseConfig(n_videos=50, n_tags=60, seed=1))
        b = build_universe(UniverseConfig(n_videos=50, n_tags=60, seed=2))
        assert a.video_ids() != b.video_ids()

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            UniverseConfig(n_videos=0)
        with pytest.raises(ConfigError):
            UniverseConfig(n_tags=5)


class TestGroundTruth:
    def test_true_views_sum_to_video_views(self, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        video = tiny_universe.get(video_id)
        assert tiny_universe.true_views(video_id).sum() == pytest.approx(
            video.views
        )

    def test_true_tag_views_aggregates(self, tiny_universe):
        # views(t) ground truth equals the manual sum over videos(t).
        tag = "music"
        manual = np.zeros(len(tiny_universe.registry))
        count = 0
        for video in tiny_universe.videos():
            if tag in video.tags:
                manual += video.true_views_by_country()
                count += 1
        assert count > 0
        assert np.allclose(tiny_universe.true_tag_views(tag), manual)


class TestMostPopularFeeds:
    def test_ranking_is_by_local_views(self, tiny_universe):
        top = tiny_universe.most_popular("BR", 10)
        index = tiny_universe.registry.index_of("BR")
        local_views = [
            tiny_universe.get(video_id).views
            * tiny_universe.get(video_id).true_shares[index]
            for video_id in top
        ]
        assert local_views == sorted(local_views, reverse=True)

    def test_rankings_differ_across_countries(self, tiny_universe):
        assert tiny_universe.most_popular("BR", 10) != tiny_universe.most_popular(
            "JP", 10
        )

    def test_unknown_country_rejected(self, tiny_universe):
        with pytest.raises(UnknownCountryError):
            tiny_universe.most_popular("XX")

    def test_count_respected(self, tiny_universe):
        assert len(tiny_universe.most_popular("US", 3)) == 3


class TestToDataset:
    def test_dataset_is_observable_view(self, tiny_universe):
        dataset = tiny_universe.to_dataset()
        assert len(dataset) == len(tiny_universe)
        video = next(iter(dataset))
        synth = tiny_universe.get(video.video_id)
        assert video.views == synth.views
        assert video.tags == synth.tags


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {
            "tiny", "small", "medium", "large", "xlarge", "xxlarge",
        }

    def test_sizes_increase(self):
        names = ("tiny", "small", "medium", "large", "xlarge", "xxlarge")
        sizes = [PRESETS[name].n_videos for name in names]
        assert sizes == sorted(sizes)

    def test_stream_only_presets_are_presets(self):
        from repro.synth.presets import STREAM_ONLY_PRESETS

        assert STREAM_ONLY_PRESETS <= set(PRESETS)
        # Everything the object-path generator can afford stays routable.
        assert "large" not in STREAM_ONLY_PRESETS

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            preset_config("gigantic")
