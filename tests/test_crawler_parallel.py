"""Tests for the multi-worker crawler."""

import time

import pytest

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import YoutubeService
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.errors import ConfigError


class TestCorrectness:
    def test_exhaustive_crawl_matches_sequential_set(self, tiny_universe):
        sequential = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=10_000
        ).run()
        parallel = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=6, max_videos=10_000
        ).run()
        assert set(parallel.dataset.video_ids()) == set(
            sequential.dataset.video_ids()
        )

    def test_records_identical_to_sequential(self, tiny_universe):
        sequential = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=10_000
        ).run()
        parallel = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=4, max_videos=10_000
        ).run()
        for video in parallel.dataset:
            reference = sequential.dataset.get(video.video_id)
            assert video.views == reference.views
            assert video.tags == reference.tags
            assert video.popularity == reference.popularity

    def test_no_duplicates(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=8, max_videos=300
        ).run()
        ids = result.dataset.video_ids()
        assert len(ids) == len(set(ids))

    def test_budget_respected(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=8, max_videos=50
        ).run()
        assert len(result.dataset) == 50
        assert result.stats.stopped_by_budget

    def test_single_worker_works(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=1, max_videos=40
        ).run()
        assert len(result.dataset) == 40

    def test_fetch_count_matches_dataset(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=4, max_videos=120
        ).run()
        assert result.stats.fetched == len(result.dataset)


class TestFaultsAndQuota:
    def test_survives_transient_faults(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.1, seed=3)
        )
        result = ParallelSnowballCrawler(
            service, workers=4, max_videos=150, max_retries=5
        ).run()
        assert len(result.dataset) == 150
        assert result.stats.transient_errors > 0

    def test_quota_exhaustion_stops_all_workers(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=150))
        result = ParallelSnowballCrawler(
            service, workers=6, max_videos=10_000
        ).run()
        assert result.stats.stopped_by_quota
        assert len(result.dataset) < 10_000


class TestConcurrencySpeedup:
    def test_parallel_faster_under_latency(self, tiny_universe):
        # With per-request latency the workers overlap their waiting; 8
        # workers must beat 1 worker clearly (generous 2x margin to stay
        # robust on loaded CI machines).
        def timed(workers):
            service = YoutubeService(tiny_universe, latency_seconds=0.002)
            start = time.perf_counter()
            ParallelSnowballCrawler(
                service, workers=workers, max_videos=80
            ).run()
            return time.perf_counter() - start

        slow = timed(1)
        fast = timed(8)
        assert fast < slow / 2

    def test_invalid_configs_rejected(self, tiny_universe):
        service = YoutubeService(tiny_universe)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, workers=0)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, max_videos=0)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, seeds_per_country=0)
