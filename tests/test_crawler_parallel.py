"""Tests for the multi-worker crawler."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import YoutubeService
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.errors import ConfigError


class TestCorrectness:
    def test_exhaustive_crawl_matches_sequential_set(self, tiny_universe):
        sequential = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=10_000
        ).run()
        parallel = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=6, max_videos=10_000
        ).run()
        assert set(parallel.dataset.video_ids()) == set(
            sequential.dataset.video_ids()
        )

    def test_records_identical_to_sequential(self, tiny_universe):
        sequential = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=10_000
        ).run()
        parallel = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=4, max_videos=10_000
        ).run()
        for video in parallel.dataset:
            reference = sequential.dataset.get(video.video_id)
            assert video.views == reference.views
            assert video.tags == reference.tags
            assert video.popularity == reference.popularity

    def test_no_duplicates(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=8, max_videos=300
        ).run()
        ids = result.dataset.video_ids()
        assert len(ids) == len(set(ids))

    def test_budget_respected(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=8, max_videos=50
        ).run()
        assert len(result.dataset) == 50
        assert result.stats.stopped_by_budget

    def test_single_worker_works(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=1, max_videos=40
        ).run()
        assert len(result.dataset) == 40

    def test_fetch_count_matches_dataset(self, tiny_universe):
        result = ParallelSnowballCrawler(
            YoutubeService(tiny_universe), workers=4, max_videos=120
        ).run()
        assert result.stats.fetched == len(result.dataset)


class TestFaultsAndQuota:
    def test_survives_transient_faults(self, tiny_universe):
        service = YoutubeService(
            tiny_universe, faults=FaultInjector(rate=0.1, seed=3)
        )
        result = ParallelSnowballCrawler(
            service, workers=4, max_videos=150, max_retries=5
        ).run()
        assert len(result.dataset) == 150
        assert result.stats.transient_errors > 0

    def test_quota_exhaustion_stops_all_workers(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=150))
        result = ParallelSnowballCrawler(
            service, workers=6, max_videos=10_000
        ).run()
        assert result.stats.stopped_by_quota
        assert len(result.dataset) < 10_000


class TestConcurrencySpeedup:
    def test_parallel_faster_under_latency(self, tiny_universe):
        # With per-request latency the workers overlap their waiting; 8
        # workers must beat 1 worker clearly (generous 2x margin to stay
        # robust on loaded CI machines).
        def timed(workers):
            service = YoutubeService(tiny_universe, latency_seconds=0.002)
            start = time.perf_counter()
            ParallelSnowballCrawler(
                service, workers=workers, max_videos=80
            ).run()
            return time.perf_counter() - start

        slow = timed(1)
        fast = timed(8)
        assert fast < slow / 2

    def test_invalid_configs_rejected(self, tiny_universe):
        service = YoutubeService(tiny_universe)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, workers=0)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, max_videos=0)
        with pytest.raises(ConfigError):
            ParallelSnowballCrawler(service, seeds_per_country=0)


class TestFrontierKillAtEveryStep:
    """Property test for the claim/abandon loss window.

    ``abandon()`` un-claims an entry in one locked step; a worker dying
    at *any* point of its claim must leave the frontier able to hand the
    entry out again — never lost, never handed out twice concurrently.
    """

    @given(
        deaths=st.lists(st.booleans(), max_size=80),
        n_entries=st.integers(min_value=1, max_value=12),
    )
    def test_abandon_never_loses_or_duplicates_entries(
        self, deaths, n_entries
    ):
        from collections import deque

        from repro.crawler.parallel import _SharedFrontier

        frontier = _SharedFrontier()
        ids = [f"AAAAAAAA{i:03d}" for i in range(n_entries)]
        frontier.push_all(ids, 0)
        plan = deque(deaths)
        processed = []
        while True:
            entry = frontier.claim()
            if entry is None:
                break
            if plan and plan.popleft():
                # Worker dies mid-item: abandon is atomic, so a
                # snapshot taken at any moment afterwards sees the
                # entry pending exactly once.
                frontier.abandon(entry)
                pending, _ = frontier.snapshot()
                assert [e for e in pending if e[0] == entry[0]] == [entry]
            else:
                processed.append(entry)
                frontier.release(entry)
        pending, admitted = frontier.snapshot()
        assert pending == []
        assert frontier.drained()
        # Exactly-once: every entry processed, none twice.
        assert sorted(video_id for video_id, _ in processed) == sorted(ids)
        assert admitted == set(ids)
