"""Trending detector: exact decay math over the engine's delta flow.

The half-life decay uses ``2^(−Δt / half_life)``, so waiting exactly one
half-life must halve a score *bitwise* (``exp2(-1) == 0.5``) — the tests
lean on that to check the lazy-decay bookkeeping without tolerances.
"""

import numpy as np
import pytest

from repro.analysis.trending import TrendingDetector
from repro.engine.incremental import ApplyResult, DeltaBatch, IncrementalEngine
from repro.errors import AnalysisError

US_POP = {"US": 5}


def _engine_with_videos():
    """Two eligible videos: vid A (US-only) tagged music+live, B (JP) music."""
    engine = IncrementalEngine()
    engine.apply(
        DeltaBatch(
            timestamp=0.0,
            new_video_ids=np.array(["videoAAAAAA", "videoBBBBBB"]),
            new_views=np.array([0, 0], dtype=np.int64),
            new_pop=np.stack(
                [_pop({"US": 5}), _pop({"JP": 3})]
            ),
            new_tag_indptr=np.array([0, 2, 3], dtype=np.int64),
            new_tags=np.array(["music", "live", "music"]),
        )
    )
    return engine


def _pop(intensities):
    from repro.world.countries import default_registry

    codes = default_registry().codes()
    row = np.zeros(len(codes), dtype=np.float64)
    for code, value in intensities.items():
        row[codes.index(code)] = value
    return row


def _delta(engine, timestamp, vid, views):
    return engine.apply(
        DeltaBatch(
            timestamp=timestamp,
            video_ids=np.array([vid]),
            view_deltas=np.array([views], dtype=np.int64),
        )
    )


def _tick(engine, timestamp):
    """An empty batch: advances time, moves nothing."""
    return engine.apply(DeltaBatch(timestamp=timestamp))


class TestValidation:
    def test_nonpositive_half_life_raises(self):
        engine = IncrementalEngine()
        with pytest.raises(AnalysisError, match="half_life"):
            TrendingDetector(engine, half_life=0.0)

    def test_time_backwards_raises(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        detector.update(_delta(engine, 5.0, "videoAAAAAA", 1))
        fake = ApplyResult(
            timestamp=1.0,
            touched_rows=np.empty(0, dtype=np.int64),
            row_views_added=np.empty(0, dtype=np.int64),
            touched_tags=np.empty(0, dtype=np.int64),
            n_deltas=0,
            n_deltas_ignored=0,
            n_new_videos=0,
            n_new_videos_skipped=0,
            n_new_tags=0,
            n_tags_deferred=0,
        )
        with pytest.raises(AnalysisError, match="time ran backwards"):
            detector.update(fake)

    def test_unknown_country_raises(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        detector.update(_delta(engine, 1.0, "videoAAAAAA", 1))
        with pytest.raises(AnalysisError, match="unknown country"):
            detector.top_tags("XX")

    def test_negative_count_raises(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        with pytest.raises(AnalysisError, match="count"):
            detector.top_videos(count=-1)


class TestDecayMath:
    def test_impulse_lands_in_estimate_share_country(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=100.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 100))
        assert detector.video_scores("US")[0] == 100.0
        assert detector.video_scores("JP")[0] == 0.0
        assert detector.video_scores()[0] == 100.0

    def test_one_half_life_halves_exactly(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=50.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 100))
        detector.update(_tick(engine, 50.0))
        assert detector.video_scores("US")[0] == 50.0
        assert detector.tag_scores("US")[engine.tag_id("music")] == 50.0

    def test_accumulation_decays_older_impulses(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=50.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 100))
        detector.update(_delta(engine, 50.0, "videoAAAAAA", 100))
        assert detector.video_scores("US")[0] == 150.0

    def test_tags_inherit_member_impulses(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=100.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 40))
        detector.update(_delta(engine, 0.0, "videoBBBBBB", 60))
        # "music" tags both videos; "live" only the US one.
        assert detector.tag_scores()[engine.tag_id("music")] == 100.0
        assert detector.tag_scores()[engine.tag_id("live")] == 40.0
        assert detector.tag_scores("JP")[engine.tag_id("music")] == 60.0

    def test_uniform_fallback_when_estimate_row_is_zero(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=100.0)
        fake = ApplyResult(
            timestamp=0.0,
            touched_rows=np.array([0], dtype=np.int64),
            row_views_added=np.array([62], dtype=np.int64),
            touched_tags=np.empty(0, dtype=np.int64),
            n_deltas=1,
            n_deltas_ignored=0,
            n_new_videos=0,
            n_new_videos_skipped=0,
            n_new_tags=0,
            n_tags_deferred=0,
        )
        detector.update(fake)  # row 0 has views=0, est row all zeros
        scores = detector._video_rate[0]
        assert np.all(scores == 62 / engine.n_countries)


class TestQueries:
    def test_empty_detector_scores_are_zero(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        assert np.all(detector.video_scores() == 0.0)
        assert detector.top_videos() == []
        assert detector.top_tags() == []
        assert np.all(detector.demand_vector() == 0.0)

    def test_ranking_excludes_zero_scores(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 10))
        names = [vid for vid, _ in detector.top_videos(count=10)]
        assert names == ["videoAAAAAA"]

    def test_ranking_order_and_count_clamp(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=10.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 10))
        detector.update(_delta(engine, 0.0, "videoBBBBBB", 99))
        top = detector.top_videos(count=1)
        assert top == [("videoBBBBBB", 99.0)]
        tags = detector.top_tags(count=99)
        assert tags[0][0] == "music"
        assert detector.top_videos(count=0) == []

    def test_demand_vector_totals_views(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=100.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 70))
        detector.update(_delta(engine, 0.0, "videoBBBBBB", 30))
        demand = detector.demand_vector()
        codes = engine.codes
        assert demand[codes.index("US")] == 70.0
        assert demand[codes.index("JP")] == 30.0
        assert demand.sum() == 100.0

    def test_detector_follows_new_arrivals(self):
        engine = _engine_with_videos()
        detector = TrendingDetector(engine, half_life=100.0)
        detector.update(_delta(engine, 0.0, "videoAAAAAA", 5))
        result = engine.apply(
            DeltaBatch(
                timestamp=1.0,
                new_video_ids=np.array(["videoCCCCCC"]),
                new_views=np.array([500], dtype=np.int64),
                new_pop=_pop({"BR": 9})[None, :],
                new_tag_indptr=np.array([0, 1], dtype=np.int64),
                new_tags=np.array(["samba"]),
            )
        )
        detector.update(result)
        assert detector.top_videos("BR") == [("videoCCCCCC", 500.0)]
        assert detector.top_tags("BR")[0][0] == "samba"
        assert detector.batches_observed == 2
