"""Unit tests for quota accounting."""

import pytest

from repro.api.quota import DEFAULT_COSTS, UNLIMITED, QuotaBudget
from repro.errors import ConfigError, QuotaExceededError


class TestQuotaBudget:
    def test_unlimited_never_exhausts(self):
        budget = QuotaBudget()
        for _ in range(1000):
            budget.charge("get_video")
        assert budget.used == 1000

    def test_charge_uses_kind_costs(self):
        budget = QuotaBudget(limit=100)
        budget.charge("related_videos")
        assert budget.used == DEFAULT_COSTS["related_videos"]

    def test_unknown_kind_costs_one(self):
        budget = QuotaBudget(limit=10)
        budget.charge("mystery")
        assert budget.used == 1

    def test_exhaustion_raises(self):
        budget = QuotaBudget(limit=2)
        budget.charge("get_video")
        budget.charge("get_video")
        with pytest.raises(QuotaExceededError):
            budget.charge("get_video")

    def test_overshooting_charge_rejected_without_partial_use(self):
        budget = QuotaBudget(limit=2)
        with pytest.raises(QuotaExceededError):
            budget.charge("related_videos")  # costs 3 > 2
        assert budget.used == 0

    def test_remaining(self):
        budget = QuotaBudget(limit=10)
        budget.charge("get_video")
        assert budget.remaining == 9

    def test_can_afford(self):
        budget = QuotaBudget(limit=3)
        assert budget.can_afford("related_videos")
        budget.charge("get_video")
        assert not budget.can_afford("related_videos")

    def test_usage_by_kind(self):
        budget = QuotaBudget(limit=100)
        budget.charge("get_video")
        budget.charge("get_video")
        budget.charge("most_popular")
        usage = budget.usage_by_kind()
        assert usage["get_video"] == 2
        assert usage["most_popular"] == DEFAULT_COSTS["most_popular"]

    def test_reset_restores_budget(self):
        budget = QuotaBudget(limit=1)
        budget.charge("get_video")
        budget.reset()
        assert budget.used == 0
        budget.charge("get_video")  # does not raise

    def test_negative_limit_rejected(self):
        with pytest.raises(ConfigError):
            QuotaBudget(limit=-1)

    def test_custom_costs(self):
        budget = QuotaBudget(limit=10, costs={"x": 5})
        budget.charge("x")
        assert budget.used == 5
