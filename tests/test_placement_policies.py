"""Unit tests for placement policies and the tag predictor."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.placement.policies import (
    NoPlacement,
    OraclePlacement,
    PriorPlacement,
    TagPredictivePlacement,
)
from repro.placement.predictor import TagGeoPredictor


@pytest.fixture(scope="module")
def predictor(tiny_predictor):
    """Alias for the shared session-scoped predictor."""
    return tiny_predictor


class TestTagGeoPredictor:
    def test_prediction_is_distribution(self, predictor, tiny_dataset):
        video = next(iter(tiny_dataset))
        shares = predictor.predict_shares(video)
        assert shares.sum() == pytest.approx(1.0)

    def test_cold_start_falls_back_to_prior(self, predictor, tiny_pipeline):
        from repro.datamodel.video import Video

        stranger = Video(
            video_id="AAAAAAAAAAA",
            title="t",
            uploader="u",
            upload_date="2010-01-01",
            views=10,
            tags=("never-seen-tag-qq",),
        )
        assert predictor.is_cold_start(stranger)
        shares = predictor.predict_shares(stranger)
        assert np.allclose(
            shares, tiny_pipeline.universe.traffic.as_vector()
        )

    def test_top_countries_ordering(self, predictor, tiny_dataset):
        video = next(iter(tiny_dataset))
        top = predictor.top_countries(video, 5)
        shares = predictor.predict_shares(video)
        codes = predictor.registry.codes()
        values = [shares[codes.index(code)] for code in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == 5


class TestPolicies:
    def test_no_placement_places_nothing(self, tiny_dataset):
        policy = NoPlacement()
        assert policy.place(next(iter(tiny_dataset))) == {}

    def test_prior_targets_biggest_markets(self, tiny_pipeline, tiny_dataset):
        traffic = tiny_pipeline.universe.traffic
        policy = PriorPlacement(traffic, replicas=3)
        placement = policy.place(next(iter(tiny_dataset)))
        expected = sorted(
            traffic.registry.codes(), key=traffic.share, reverse=True
        )[:3]
        assert set(placement) == set(expected)

    def test_prior_scores_scale_with_views(self, tiny_pipeline, tiny_dataset):
        traffic = tiny_pipeline.universe.traffic
        policy = PriorPlacement(traffic, replicas=1)
        videos = sorted(tiny_dataset, key=lambda video: video.views)
        low = policy.place(videos[0])
        high = policy.place(videos[-1])
        assert max(high.values()) > max(low.values())

    def test_tag_policy_replica_count(self, predictor, tiny_dataset):
        policy = TagPredictivePlacement(predictor, replicas=4)
        placement = policy.place(next(iter(tiny_dataset)))
        assert len(placement) == 4
        assert all(score >= 0 for score in placement.values())

    def test_oracle_targets_true_top_countries(
        self, tiny_pipeline, tiny_dataset
    ):
        universe = tiny_pipeline.universe
        policy = OraclePlacement(universe, replicas=3)
        video = next(iter(tiny_dataset))
        placement = policy.place(video)
        truth = universe.get(video.video_id).true_shares
        codes = universe.registry.codes()
        expected = {codes[int(i)] for i in np.argsort(-truth)[:3]}
        assert set(placement) == expected

    def test_oracle_unknown_video_places_nothing(self, tiny_pipeline):
        from repro.datamodel.video import Video

        policy = OraclePlacement(tiny_pipeline.universe, replicas=3)
        stranger = Video(
            video_id="AAAAAAAAAAA",
            title="t",
            uploader="u",
            upload_date="2010-01-01",
            views=10,
            tags=("x",),
        )
        assert policy.place(stranger) == {}

    def test_negative_replicas_rejected(self, tiny_pipeline):
        with pytest.raises(PlacementError):
            PriorPlacement(tiny_pipeline.universe.traffic, replicas=-1)
