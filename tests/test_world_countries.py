"""Unit tests for the country registry."""

import pytest

from repro.errors import UnknownCountryError
from repro.world.countries import (
    Country,
    CountryRegistry,
    SEED_COUNTRIES,
    default_registry,
)


class TestCountry:
    def test_valid_country_constructs(self):
        country = Country("BR", "Brazil", 196_935, "latin-america", ("portuguese",), 0.45)
        assert country.code == "BR"
        assert country.population == 196_935

    def test_online_population_is_product(self):
        country = Country("SG", "Singapore", 5_188, "southeast-asia", ("english",), 0.71)
        assert country.online_population == pytest.approx(5_188 * 0.71)

    def test_lowercase_code_rejected(self):
        with pytest.raises(ValueError):
            Country("br", "Brazil", 1, "latin-america", ("portuguese",), 0.5)

    def test_three_letter_code_rejected(self):
        with pytest.raises(ValueError):
            Country("BRA", "Brazil", 1, "latin-america", ("portuguese",), 0.5)

    def test_nonpositive_population_rejected(self):
        with pytest.raises(ValueError):
            Country("BR", "Brazil", 0, "latin-america", ("portuguese",), 0.5)

    def test_penetration_above_one_rejected(self):
        with pytest.raises(ValueError):
            Country("BR", "Brazil", 1, "latin-america", ("portuguese",), 1.5)


class TestDefaultRegistry:
    def test_is_cached_singleton(self):
        assert default_registry() is default_registry()

    def test_has_sixty_plus_countries(self, registry):
        assert len(registry) >= 60

    def test_contains_paper_exemplar_countries(self, registry):
        # Countries named in the paper: USA and Singapore (Fig. 1
        # discussion), Brazil (Fig. 3).
        for code in ("US", "SG", "BR"):
            assert code in registry

    def test_usa_much_larger_than_singapore(self, registry):
        # The premise of the paper's K(v) argument.
        assert registry.get("US").population > 50 * registry.get("SG").population

    def test_get_unknown_raises(self, registry):
        with pytest.raises(UnknownCountryError):
            registry.get("XX")

    def test_codes_are_unique(self, registry):
        codes = registry.codes()
        assert len(codes) == len(set(codes))

    def test_iteration_matches_codes_order(self, registry):
        assert [c.code for c in registry] == registry.codes()

    def test_index_of_roundtrip(self, registry):
        for i, code in enumerate(registry.codes()):
            assert registry.index_of(code) == i

    def test_index_of_unknown_raises(self, registry):
        with pytest.raises(UnknownCountryError):
            registry.index_of("ZZ")

    def test_all_regions_known(self, registry):
        from repro.world.regions import REGIONS

        for country in registry:
            assert country.region in REGIONS

    def test_languages_nonempty(self, registry):
        for country in registry:
            assert country.languages

    def test_total_population_positive(self, registry):
        assert registry.total_population() > 3_000_000  # > 3 billion (thousands)

    def test_online_population_below_total(self, registry):
        assert registry.total_online_population() < registry.total_population()


class TestSubset:
    def test_subset_preserves_given_order(self, registry):
        sub = registry.subset(["BR", "US", "JP"])
        assert sub.codes() == ["BR", "US", "JP"]

    def test_subset_unknown_code_raises(self, registry):
        with pytest.raises(UnknownCountryError):
            registry.subset(["BR", "XX"])

    def test_duplicate_codes_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.subset(["BR", "BR"])


class TestSeedCountries:
    def test_paper_seed_count_is_25(self):
        assert len(SEED_COUNTRIES) == 25

    def test_seeds_are_unique_and_known(self, registry):
        assert len(set(SEED_COUNTRIES)) == 25
        for code in SEED_COUNTRIES:
            assert code in registry
