"""Unit tests for ASCII rendering."""

import pytest

from repro.errors import AnalysisError
from repro.viz.asciimap import (
    SHADES,
    WORLD_GRID,
    render_bar_chart,
    render_region_strips,
    render_world_grid,
    shade_for,
)


class TestShadeFor:
    def test_zero_is_blank(self):
        assert shade_for(0, 100) == " "

    def test_peak_is_darkest(self):
        assert shade_for(100, 100) == SHADES[-1]

    def test_nonzero_never_blank(self):
        assert shade_for(1, 10_000) != " "

    def test_monotone(self):
        indices = [SHADES.index(shade_for(v, 100)) for v in (1, 25, 50, 75, 100)]
        assert indices == sorted(indices)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            shade_for(-1, 10)


class TestWorldGrid:
    def test_grid_covers_every_registry_country(self, registry):
        grid_codes = {
            code for row in WORLD_GRID for code in row if code is not None
        }
        assert grid_codes == set(registry.codes())

    def test_grid_has_no_duplicates(self):
        codes = [code for row in WORLD_GRID for code in row if code is not None]
        assert len(codes) == len(set(codes))

    def test_render_contains_highlighted_country(self):
        output = render_world_grid({"BR": 100.0})
        assert "BR█" in output

    def test_render_legend_optional(self):
        assert "legend" in render_world_grid({"BR": 1.0})
        assert "legend" not in render_world_grid({"BR": 1.0}, legend=False)

    def test_empty_values_render(self):
        output = render_world_grid({})
        assert "BR" in output

    def test_negative_value_rejected(self):
        with pytest.raises(AnalysisError):
            render_world_grid({"BR": -1.0})


class TestRegionStrips:
    def test_all_regions_listed(self, registry):
        output = render_region_strips({"BR": 1.0}, registry)
        assert "Latin America" in output
        assert "East Asia" in output

    def test_highlight_appears(self, registry):
        output = render_region_strips({"BR": 1.0}, registry)
        assert "BR█" in output


class TestBarChart:
    def test_top_n_respected(self):
        output = render_bar_chart({"A" + str(i): i + 1.0 for i in range(20)}, top=5)
        assert len(output.splitlines()) == 5

    def test_largest_bar_full_width(self):
        output = render_bar_chart({"AA": 10.0, "BB": 5.0}, width=10)
        first = output.splitlines()[0]
        assert "█" * 10 in first

    def test_value_format(self):
        output = render_bar_chart({"AA": 1234.0}, value_format="{:,.0f}")
        assert "1,234" in output

    def test_empty_values(self):
        assert render_bar_chart({}) == "(no data)"

    def test_invalid_params_rejected(self):
        with pytest.raises(AnalysisError):
            render_bar_chart({"AA": 1.0}, top=0)
        with pytest.raises(AnalysisError):
            render_bar_chart({"AA": 1.0}, width=0)
