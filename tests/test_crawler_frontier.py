"""Unit and property tests for the BFS frontier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawler.frontier import BFSFrontier

IDS = [f"AAAAAAAAA{i:02d}" for i in range(30)]


class TestFrontier:
    def test_push_pop_fifo(self):
        frontier = BFSFrontier()
        frontier.push(IDS[0], 0)
        frontier.push(IDS[1], 0)
        assert frontier.pop() == (IDS[0], 0)
        assert frontier.pop() == (IDS[1], 0)

    def test_duplicate_push_rejected(self):
        frontier = BFSFrontier()
        assert frontier.push(IDS[0], 0)
        assert not frontier.push(IDS[0], 1)
        assert len(frontier) == 1

    def test_popped_id_not_readmitted(self):
        frontier = BFSFrontier()
        frontier.push(IDS[0], 0)
        frontier.pop()
        assert not frontier.push(IDS[0], 5)
        assert len(frontier) == 0

    def test_push_all_counts_new(self):
        frontier = BFSFrontier()
        frontier.push(IDS[0], 0)
        assert frontier.push_all([IDS[0], IDS[1], IDS[2]], 1) == 2

    def test_contains_tracks_lifetime(self):
        frontier = BFSFrontier()
        frontier.push(IDS[0], 0)
        assert IDS[0] in frontier
        frontier.pop()
        assert IDS[0] in frontier  # still admitted, just not queued

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BFSFrontier().pop()

    def test_bool_and_len(self):
        frontier = BFSFrontier()
        assert not frontier
        frontier.push(IDS[0], 0)
        assert frontier
        assert len(frontier) == 1

    def test_admitted_count(self):
        frontier = BFSFrontier()
        frontier.push_all(IDS[:5], 0)
        frontier.pop()
        assert frontier.admitted_count == 5


class TestRestore:
    def test_restore_roundtrip(self):
        frontier = BFSFrontier()
        frontier.push_all(IDS[:6], 0)
        frontier.pop()
        frontier.pop()
        restored = BFSFrontier.restore(frontier.pending(), frontier.admitted())
        assert restored.pending() == frontier.pending()
        assert restored.admitted() == frontier.admitted()

    def test_restored_frontier_rejects_old_ids(self):
        frontier = BFSFrontier()
        frontier.push(IDS[0], 0)
        frontier.pop()
        restored = BFSFrontier.restore([], frontier.admitted())
        assert not restored.push(IDS[0], 0)

    def test_pending_not_in_admitted_rejected(self):
        with pytest.raises(ValueError):
            BFSFrontier.restore([(IDS[0], 0)], [])

    @settings(max_examples=50, deadline=None)
    @given(
        ids=st.lists(st.sampled_from(IDS), max_size=30),
        pops=st.integers(min_value=0, max_value=30),
    )
    def test_invariant_queued_subset_of_admitted(self, ids, pops):
        frontier = BFSFrontier()
        frontier.push_all(ids, 0)
        for _ in range(min(pops, len(frontier))):
            frontier.pop()
        queued = {video_id for video_id, _ in frontier.pending()}
        assert queued <= frontier.admitted()
        assert frontier.admitted_count == len(set(ids))
