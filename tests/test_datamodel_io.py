"""Unit tests for JSONL persistence."""

import json

import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.io import (
    read_videos_jsonl,
    video_from_record,
    video_to_record,
    write_videos_jsonl,
)
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.errors import DatasetIOError

VID = "dQw4w9WgXcQ"


def sample_video():
    return Video(
        video_id=VID,
        title="Tïtle with unicode — ✓",
        uploader="user42",
        upload_date="2010-03-14",
        views=123456,
        tags=("pop", "baile funk"),
        popularity=PopularityVector({"BR": 61, "PT": 7}),
        related_ids=("kffacxfA7G4",),
    )


class TestRecordRoundtrip:
    def test_roundtrip_preserves_everything(self):
        video = sample_video()
        rebuilt = video_from_record(video_to_record(video))
        assert rebuilt == video

    def test_missing_popularity_roundtrip(self):
        video = Video(
            video_id=VID,
            title="t",
            uploader="u",
            upload_date="2010-01-01",
            views=1,
        )
        record = video_to_record(video)
        assert "pop" not in record
        assert video_from_record(record).popularity is None

    def test_record_is_json_serializable(self):
        json.dumps(video_to_record(sample_video()))

    def test_unsupported_schema_rejected(self):
        record = video_to_record(sample_video())
        record["schema"] = 99
        with pytest.raises(DatasetIOError):
            video_from_record(record)

    def test_malformed_record_rejected(self):
        with pytest.raises(DatasetIOError):
            video_from_record({"id": VID})  # missing views


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "videos.jsonl"
        videos = [sample_video()]
        assert write_videos_jsonl(videos, path) == 1
        loaded = list(read_videos_jsonl(path))
        assert loaded == videos

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "videos.jsonl"
        write_videos_jsonl([sample_video()], path)
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        assert len(list(read_videos_jsonl(path))) == 1

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = tmp_path / "videos.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(DatasetIOError, match=":1:"):
            list(read_videos_jsonl(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetIOError):
            list(read_videos_jsonl(tmp_path / "absent.jsonl"))

    def test_dataset_roundtrip_via_jsonl(self, tmp_path, tiny_dataset):
        path = tmp_path / "ds.jsonl"
        write_videos_jsonl(tiny_dataset, path)
        rebuilt = Dataset(read_videos_jsonl(path))
        assert len(rebuilt) == len(tiny_dataset)
        for video in tiny_dataset:
            assert rebuilt.get(video.video_id) == video
