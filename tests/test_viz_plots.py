"""Tests for ASCII distribution plots."""

import pytest

from repro.errors import AnalysisError
from repro.viz.plots import render_histogram, render_loglog_ccdf


class TestHistogram:
    def test_renders_all_bins(self):
        output = render_histogram(range(1, 101), bins=10)
        assert len(output.splitlines()) == 10

    def test_counts_sum_to_n(self):
        output = render_histogram(range(1, 101), bins=10)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in output.splitlines()]
        assert sum(counts) == 100

    def test_log_bins_positive_only(self):
        with pytest.raises(AnalysisError):
            render_histogram([0, 1, 2], log_x=True)

    def test_log_bins_work(self):
        output = render_histogram([1, 10, 100, 1000, 10000], bins=4, log_x=True)
        assert len(output.splitlines()) == 4

    def test_title_included(self):
        output = render_histogram([1, 2, 3], title="Views")
        assert output.splitlines()[0] == "Views"

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_histogram([])

    def test_bad_params_rejected(self):
        with pytest.raises(AnalysisError):
            render_histogram([1, 2], bins=0)
        with pytest.raises(AnalysisError):
            render_histogram([1, 2], width=0)

    def test_heavy_tail_visible_in_log_bins(self, tiny_dataset):
        views = [video.views for video in tiny_dataset]
        output = render_histogram(views, bins=10, log_x=True)
        assert len(output.splitlines()) == 10


class TestLogLogCCDF:
    def test_renders_grid(self):
        output = render_loglog_ccdf([2**i for i in range(1, 200)], rows=8, cols=30)
        lines = output.splitlines()
        assert any("•" in line for line in lines)
        assert "log scale" in lines[-1]

    def test_nonpositive_filtered(self):
        output = render_loglog_ccdf([0, -5, 1, 10, 100])
        assert "•" in output

    def test_all_nonpositive_rejected(self):
        with pytest.raises(AnalysisError):
            render_loglog_ccdf([0, -1])

    def test_bad_dims_rejected(self):
        with pytest.raises(AnalysisError):
            render_loglog_ccdf([1, 2, 3], rows=1)

    def test_title(self):
        output = render_loglog_ccdf([1, 5, 20], title="CCDF")
        assert output.splitlines()[0] == "CCDF"
