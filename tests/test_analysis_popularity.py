"""Tests for the popularity↔locality relationship and estimator bias."""

import importlib
import sys

import numpy as np
import pytest

import repro.analysis.popularity as popularity_module
from repro.analysis.popularity import popularity_vs_locality, spearman_rank
from repro.datamodel.dataset import Dataset
from repro.errors import AnalysisError
from repro.reconstruct.validation import per_country_bias
from repro.reconstruct.views import ViewReconstructor


class TestSpearmanScipyOptional:
    def test_module_imports_and_works_without_scipy(self):
        """The analysis layer must stay usable on a numpy-only install."""
        saved = {
            name: module
            for name, module in list(sys.modules.items())
            if name == "scipy" or name.startswith("scipy.")
        }
        for name in saved:
            del sys.modules[name]
        # A None entry makes ``import scipy`` raise ImportError.
        sys.modules["scipy"] = None
        try:
            reloaded = importlib.reload(popularity_module)
            assert reloaded.scipy_stats is None
            assert reloaded.spearman_rank(
                np.array([1.0, 2.0, 3.0, 4.0]),
                np.array([10.0, 20.0, 25.0, 70.0]),
            ) == pytest.approx(1.0)
        finally:
            del sys.modules["scipy"]
            sys.modules.update(saved)
            importlib.reload(popularity_module)

    def test_fallback_matches_scipy_with_ties(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        x = rng.integers(0, 10, size=60).astype(float)  # heavy ties
        y = x + rng.normal(0, 2.0, size=60)
        fallback = popularity_module._average_ranks
        rx, ry = fallback(x), fallback(y)
        ours = float(
            ((rx - rx.mean()) * (ry - ry.mean())).mean() / (rx.std() * ry.std())
        )
        theirs = float(scipy_stats.spearmanr(x, y).statistic)
        assert ours == pytest.approx(theirs, abs=1e-12)

    @pytest.mark.filterwarnings("ignore")
    def test_constant_input_is_nan(self):
        # scipy warns on constant input (and so returns nan) — the numpy
        # fallback matches the nan without the warning.
        assert np.isnan(
            spearman_rank(np.ones(5), np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        )

    def test_bad_shapes_rejected(self):
        with pytest.raises(AnalysisError):
            spearman_rank(np.ones(3), np.ones(4))
        with pytest.raises(AnalysisError):
            spearman_rank(np.ones(1), np.ones(1))


class TestPopularityVsLocality:
    @pytest.fixture(scope="class")
    def result(self, tiny_pipeline):
        return popularity_vs_locality(
            tiny_pipeline.dataset, tiny_pipeline.reconstructor
        )

    def test_correlations_in_range(self, result):
        assert -1.0 <= result.spearman_views_top1 <= 1.0
        assert -1.0 <= result.spearman_views_jsd <= 1.0

    def test_counts_all_eligible_videos(self, result, tiny_pipeline):
        assert result.videos == len(tiny_pipeline.dataset)

    def test_head_is_more_global(self, result):
        # The audience_effect coupling makes the view head globally
        # watched, as in the real data [paper ref. 2].
        assert result.head_is_more_global()
        assert result.spearman_views_jsd < 0.05  # not positively local

    def test_decile_means_are_shares(self, result):
        assert 0.0 < result.head_mean_top1 <= 1.0
        assert 0.0 < result.tail_mean_top1 <= 1.0

    def test_too_small_corpus_rejected(self, tiny_pipeline):
        small = Dataset(
            list(tiny_pipeline.dataset)[:5], tiny_pipeline.dataset.registry
        )
        with pytest.raises(AnalysisError):
            popularity_vs_locality(small, tiny_pipeline.reconstructor)


class TestPerCountryBias:
    @pytest.fixture(scope="class")
    def bias(self, tiny_pipeline):
        return per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            tiny_pipeline.reconstructor,
        )

    def test_covers_all_countries(self, bias, registry):
        assert set(bias) == set(registry.codes())

    def test_biases_sum_to_zero(self, bias):
        # estimated and true shares both sum to 1 per video, so signed
        # errors cancel across the axis.
        assert sum(bias.values()) == pytest.approx(0.0, abs=1e-9)

    def test_large_markets_under_credited(self, bias, tiny_pipeline):
        # The documented quantization drift: the biggest traffic market
        # loses share to the saturated small-traffic countries.
        traffic = tiny_pipeline.universe.traffic
        biggest = max(traffic.as_dict(), key=traffic.as_dict().get)
        assert bias[biggest] < 0

    def test_smoothing_shrinks_total_bias(self, tiny_pipeline):
        plain = per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            ViewReconstructor(tiny_pipeline.universe.traffic),
        )
        smoothed = per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            ViewReconstructor(tiny_pipeline.universe.traffic, smoothing=0.05),
        )
        assert sum(abs(v) for v in smoothed.values()) < sum(
            abs(v) for v in plain.values()
        )

    def test_empty_dataset_gives_zero_bias(self, tiny_pipeline):
        bias = per_country_bias(
            tiny_pipeline.universe,
            Dataset(),
            tiny_pipeline.reconstructor,
        )
        assert all(value == 0.0 for value in bias.values())
