"""Tests for the popularity↔locality relationship and estimator bias."""

import numpy as np
import pytest

from repro.analysis.popularity import popularity_vs_locality
from repro.datamodel.dataset import Dataset
from repro.errors import AnalysisError
from repro.reconstruct.validation import per_country_bias
from repro.reconstruct.views import ViewReconstructor


class TestPopularityVsLocality:
    @pytest.fixture(scope="class")
    def result(self, tiny_pipeline):
        return popularity_vs_locality(
            tiny_pipeline.dataset, tiny_pipeline.reconstructor
        )

    def test_correlations_in_range(self, result):
        assert -1.0 <= result.spearman_views_top1 <= 1.0
        assert -1.0 <= result.spearman_views_jsd <= 1.0

    def test_counts_all_eligible_videos(self, result, tiny_pipeline):
        assert result.videos == len(tiny_pipeline.dataset)

    def test_head_is_more_global(self, result):
        # The audience_effect coupling makes the view head globally
        # watched, as in the real data [paper ref. 2].
        assert result.head_is_more_global()
        assert result.spearman_views_jsd < 0.05  # not positively local

    def test_decile_means_are_shares(self, result):
        assert 0.0 < result.head_mean_top1 <= 1.0
        assert 0.0 < result.tail_mean_top1 <= 1.0

    def test_too_small_corpus_rejected(self, tiny_pipeline):
        small = Dataset(
            list(tiny_pipeline.dataset)[:5], tiny_pipeline.dataset.registry
        )
        with pytest.raises(AnalysisError):
            popularity_vs_locality(small, tiny_pipeline.reconstructor)


class TestPerCountryBias:
    @pytest.fixture(scope="class")
    def bias(self, tiny_pipeline):
        return per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            tiny_pipeline.reconstructor,
        )

    def test_covers_all_countries(self, bias, registry):
        assert set(bias) == set(registry.codes())

    def test_biases_sum_to_zero(self, bias):
        # estimated and true shares both sum to 1 per video, so signed
        # errors cancel across the axis.
        assert sum(bias.values()) == pytest.approx(0.0, abs=1e-9)

    def test_large_markets_under_credited(self, bias, tiny_pipeline):
        # The documented quantization drift: the biggest traffic market
        # loses share to the saturated small-traffic countries.
        traffic = tiny_pipeline.universe.traffic
        biggest = max(traffic.as_dict(), key=traffic.as_dict().get)
        assert bias[biggest] < 0

    def test_smoothing_shrinks_total_bias(self, tiny_pipeline):
        plain = per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            ViewReconstructor(tiny_pipeline.universe.traffic),
        )
        smoothed = per_country_bias(
            tiny_pipeline.universe,
            tiny_pipeline.dataset,
            ViewReconstructor(tiny_pipeline.universe.traffic, smoothing=0.05),
        )
        assert sum(abs(v) for v in smoothed.values()) < sum(
            abs(v) for v in plain.values()
        )

    def test_empty_dataset_gives_zero_bias(self, tiny_pipeline):
        bias = per_country_bias(
            tiny_pipeline.universe,
            Dataset(),
            tiny_pipeline.reconstructor,
        )
        assert all(value == 0.0 for value in bias.values())
