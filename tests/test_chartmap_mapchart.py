"""Unit and property tests for map-chart URL building and parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chartmap.mapchart import (
    MapChart,
    build_map_chart_url,
    chart_from_popularity,
    parse_map_chart_url,
    popularity_from_chart,
)
from repro.datamodel.popularity import MAX_INTENSITY, PopularityVector
from repro.errors import ChartURLError
from repro.world.countries import default_registry


def intensity_dicts():
    codes = default_registry().codes()
    return st.dictionaries(
        st.sampled_from(codes),
        st.integers(min_value=1, max_value=MAX_INTENSITY),
        max_size=len(codes),
    )


class TestBuildAndParse:
    def test_url_contains_map_chart_markers(self):
        url = build_map_chart_url(PopularityVector({"BR": 61}))
        assert "cht=t" in url
        assert "chtm=world" in url
        assert "chld=BR" in url
        assert "chd=s%3A9" in url or "chd=s:9" in url

    def test_parse_recovers_countries_and_intensities(self):
        url = build_map_chart_url(PopularityVector({"BR": 61, "PT": 7}))
        chart = parse_map_chart_url(url)
        vector = popularity_from_chart(chart)
        assert vector["BR"] == 61
        assert vector["PT"] == 7

    def test_non_map_chart_rejected(self):
        with pytest.raises(ChartURLError):
            parse_map_chart_url("http://chart.apis.google.com/chart?cht=p3")

    def test_odd_chld_rejected(self):
        with pytest.raises(ChartURLError):
            parse_map_chart_url(
                "http://x/chart?cht=t&chld=BRP&chd=s:99"
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ChartURLError):
            parse_map_chart_url(
                "http://x/chart?cht=t&chld=BRPT&chd=s:9"
            )

    def test_non_simple_encoding_rejected(self):
        with pytest.raises(ChartURLError):
            parse_map_chart_url(
                "http://x/chart?cht=t&chld=BR&chd=e:AA"
            )

    def test_malformed_size_rejected(self):
        with pytest.raises(ChartURLError):
            parse_map_chart_url(
                "http://x/chart?cht=t&chld=BR&chd=s:9&chs=wide"
            )

    def test_unknown_countries_dropped_on_extraction(self):
        chart = MapChart(countries=("BR", "ZZ"), intensities=(61, 30))
        vector = popularity_from_chart(chart)
        assert vector["BR"] == 61
        assert len(vector) == 1

    def test_missing_data_points_dropped(self):
        chart = MapChart(countries=("BR", "PT"), intensities=(61, None))
        vector = popularity_from_chart(chart)
        assert len(vector) == 1

    def test_chart_length_mismatch_rejected(self):
        with pytest.raises(ChartURLError):
            MapChart(countries=("BR",), intensities=(61, 2))

    @settings(max_examples=50, deadline=None)
    @given(intensities=intensity_dicts())
    def test_url_roundtrip(self, intensities):
        original = PopularityVector(intensities)
        url = build_map_chart_url(original)
        recovered = popularity_from_chart(parse_map_chart_url(url))
        assert recovered == original


class TestChartFromPopularity:
    def test_empty_vector_gives_empty_chart(self):
        chart = chart_from_popularity(PopularityVector.empty())
        assert chart.countries == ()
        assert chart.intensities == ()

    def test_zero_intensity_countries_excluded(self):
        chart = chart_from_popularity(PopularityVector({"BR": 61, "US": 0}))
        assert chart.countries == ("BR",)
