"""Tests for the serving-distance evaluator."""

import pytest

from repro.errors import PlacementError
from repro.placement.distance import evaluate_serving_distance
from repro.placement.policies import (
    NoPlacement,
    OraclePlacement,
    PriorPlacement,
    TagPredictivePlacement,
)
from repro.placement.simulator import budgeted_placements


@pytest.fixture(scope="module")
def distance_setup(tiny_pipeline, tiny_predictor, tiny_trace):
    universe = tiny_pipeline.universe
    return universe, tiny_pipeline.dataset, tiny_trace(5000, seed=77), tiny_predictor


class TestBudgetedPlacements:
    def test_capacity_respected(self, distance_setup):
        universe, dataset, _, predictor = distance_setup
        placements = budgeted_placements(
            dataset,
            TagPredictivePlacement(predictor, replicas=5),
            capacity=12,
            registry=universe.registry,
        )
        for country, video_ids in placements.items():
            assert len(video_ids) <= 12
            assert len(video_ids) == len(set(video_ids))

    def test_top_scores_win(self, distance_setup):
        universe, dataset, _, _ = distance_setup
        placements = budgeted_placements(
            dataset,
            OraclePlacement(universe, replicas=3),
            capacity=5,
            registry=universe.registry,
        )
        # In a country's list, the kept videos are those with the highest
        # oracle scores: check US keeps views-heavy videos.
        if "US" in placements:
            kept = placements["US"]
            index = universe.registry.index_of("US")
            kept_scores = [
                universe.get(vid).views * universe.get(vid).true_shares[index]
                for vid in kept
            ]
            assert min(kept_scores) > 0

    def test_empty_policy_places_nothing(self, distance_setup):
        universe, dataset, _, _ = distance_setup
        assert (
            budgeted_placements(
                dataset, NoPlacement(), capacity=5, registry=universe.registry
            )
            == {}
        )


class TestServingDistance:
    def test_report_fractions_sum_to_one(self, distance_setup):
        universe, dataset, trace, predictor = distance_setup
        report = evaluate_serving_distance(
            dataset,
            trace,
            TagPredictivePlacement(predictor, replicas=6),
            capacity=20,
            registry=universe.registry,
        )
        total = (
            report.local_fraction
            + report.remote_fraction
            + report.origin_fraction
        )
        assert total == pytest.approx(1.0)
        assert report.requests == len(trace)

    def test_no_placement_all_origin(self, distance_setup):
        universe, dataset, trace, _ = distance_setup
        report = evaluate_serving_distance(
            dataset, trace, NoPlacement(), capacity=20, registry=universe.registry
        )
        assert report.origin_fraction == 1.0
        assert report.local_fraction == 0.0
        assert report.mean_km > 1000

    def test_policy_ordering_by_distance(self, distance_setup):
        universe, dataset, trace, predictor = distance_setup
        def km(policy):
            return evaluate_serving_distance(
                dataset, trace, policy, capacity=20, registry=universe.registry
            ).mean_km

        none_km = km(NoPlacement())
        prior_km = km(PriorPlacement(universe.traffic, 6))
        tags_km = km(TagPredictivePlacement(predictor, 6))
        oracle_km = km(OraclePlacement(universe, 6))
        assert oracle_km <= tags_km < prior_km < none_km

    def test_local_serving_is_free(self, distance_setup):
        universe, dataset, trace, _ = distance_setup
        # With infinite capacity, the oracle pins every requested video in
        # its top countries; mean distance must drop far below no-placement.
        report = evaluate_serving_distance(
            dataset,
            trace,
            OraclePlacement(universe, replicas=10),
            capacity=10**9,
            registry=universe.registry,
        )
        assert report.local_fraction > 0.5

    def test_unknown_origin_rejected(self, distance_setup):
        universe, dataset, trace, _ = distance_setup
        with pytest.raises(PlacementError):
            evaluate_serving_distance(
                dataset,
                trace,
                NoPlacement(),
                capacity=5,
                registry=universe.registry,
                origin="XX",
            )

    def test_precomputed_matrix_matches(self, distance_setup):
        from repro.world.geo import distance_matrix

        universe, dataset, trace, predictor = distance_setup
        policy = TagPredictivePlacement(predictor, replicas=4)
        lazy = evaluate_serving_distance(
            dataset, trace, policy, capacity=10, registry=universe.registry
        )
        eager = evaluate_serving_distance(
            dataset,
            trace,
            policy,
            capacity=10,
            registry=universe.registry,
            distances=distance_matrix(universe.registry),
        )
        assert lazy.mean_km == pytest.approx(eager.mean_km)
