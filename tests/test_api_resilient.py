"""Tests for the resilient client: reconnects, deadlines, breaker, chaos crawls."""

import pytest

from repro.api.chaos import ChaosProxy
from repro.api.resilient import ResilientYoutubeClient
from repro.api.service import YoutubeService
from repro.api.transport import RemoteYoutubeClient, YoutubeAPIServer
from repro.crawler.parallel import ParallelSnowballCrawler
from repro.crawler.snowball import SnowballCrawler
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    TransportError,
    VideoNotFoundError,
)
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.synth.universe import UniverseConfig, build_universe

#: Connection-level-only retry, fast enough for tests.
def _fast_retry(max_attempts=4):
    return RetryPolicy(
        max_attempts=max_attempts,
        backoff_base=0.01,
        backoff_cap=0.05,
        jitter=0.2,
        retryable=(TransportError, CircuitOpenError),
    )


@pytest.fixture(scope="module")
def micro_universe():
    """A very small world so chaos crawls stay fast."""
    return build_universe(UniverseConfig(n_videos=60, n_tags=50, seed=2011))


@pytest.fixture()
def server(micro_universe):
    with YoutubeAPIServer(YoutubeService(micro_universe)) as running:
        yield running


class TestDropIn:
    def test_service_interface_matches_raw_client(self, server, micro_universe):
        video_id = micro_universe.video_ids()[0]
        with RemoteYoutubeClient(server.host, server.port) as raw:
            expected = raw.get_video(video_id)
        with ResilientYoutubeClient(server.host, server.port) as client:
            assert client.describe()["videos"] == len(micro_universe)
            assert client.get_video(video_id) == expected
            page = client.related_videos(video_id, max_results=5)
            assert len(page.items) <= 5
            popular = client.most_popular("BR", max_results=3)
            assert len(popular.items) == 3

    def test_application_errors_pass_through_untouched(self, server):
        with ResilientYoutubeClient(server.host, server.port) as client:
            with pytest.raises(VideoNotFoundError) as excinfo:
                client.get_video("AAAAAAAAAAA")
            assert excinfo.value.video_id == "AAAAAAAAAAA"
            # Not a connection problem: nothing reconnected.
            assert client.reconnects == 0

    def test_connects_lazily(self, server):
        client = ResilientYoutubeClient(server.host, server.port)
        assert client._client is None  # no socket until first call
        client.describe()
        client.close()


class TestReconnect:
    def test_describe_succeeds_after_forced_reconnect(self, server, micro_universe):
        with ChaosProxy(server.host, server.port) as proxy:
            with ResilientYoutubeClient(
                proxy.host, proxy.port, retry=_fast_retry()
            ) as client:
                assert client.describe()["videos"] == len(micro_universe)
                # Every request now gets its connection reset...
                proxy.fault_rate = 0.999_999
                proxy.kinds = ("reset",)
                with pytest.raises(TransportError):
                    client.describe()
                # ...then the network heals: the client reconnects and
                # the same call just works again.
                proxy.fault_rate = 0.0
                assert client.describe()["videos"] == len(micro_universe)
                assert client.reconnects > 0

    def test_raw_client_stays_dead_where_resilient_recovers(self, server):
        with ChaosProxy(server.host, server.port) as proxy:
            raw = RemoteYoutubeClient(proxy.host, proxy.port)
            proxy.fault_rate = 0.999_999
            proxy.kinds = ("reset",)
            with pytest.raises(TransportError):
                raw.describe()
            proxy.fault_rate = 0.0
            with pytest.raises(TransportError):
                raw.describe()  # the raw socket is gone for good
            raw.close()

    def test_replays_are_counted(self, server):
        with ChaosProxy(server.host, server.port, stall_seconds=0.01) as proxy:
            with ResilientYoutubeClient(
                proxy.host, proxy.port, retry=_fast_retry(max_attempts=6)
            ) as client:
                client.describe()
                proxy.fault_rate = 0.999_999
                proxy.kinds = ("garble",)
                with pytest.raises(TransportError):
                    client.describe()
                proxy.fault_rate = 0.0
                client.describe()
                snapshot = client.resilience_snapshot()
                assert snapshot["reconnects"] > 0


class TestDeadline:
    def test_deadline_expires_against_a_dead_endpoint(self, micro_universe):
        clock = {"now": 0.0}

        def fake_clock():
            clock["now"] += 0.3  # each check advances well past the budget
            return clock["now"]

        client = ResilientYoutubeClient(
            "127.0.0.1",
            1,  # nothing listens here
            timeout=0.2,
            retry=_fast_retry(max_attempts=10),
            request_deadline=0.5,
            clock=fake_clock,
        )
        with pytest.raises(DeadlineExceededError):
            client.describe()
        assert client.deadline_expiries == 1
        client.close()


class TestBreaker:
    def test_breaker_opens_against_a_dead_server(self, micro_universe):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = ResilientYoutubeClient(
            "127.0.0.1",
            1,
            timeout=0.2,
            breaker=breaker,
            retry=RetryPolicy(
                max_attempts=2,
                backoff_base=0.0,
                retryable=(TransportError,),  # don't retry the open circuit
            ),
        )
        with pytest.raises(TransportError):
            client.describe()
        assert breaker.state == "open"
        assert breaker.opens == 1
        # The next request is shed without touching the network.
        with pytest.raises(CircuitOpenError):
            client.describe()
        assert client.resilience_snapshot()["breaker_opens"] == 1
        client.close()

    def test_breaker_closes_after_successful_probe(self, server, micro_universe):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.01)
        with ChaosProxy(server.host, server.port) as proxy:
            with ResilientYoutubeClient(
                proxy.host, proxy.port, breaker=breaker, retry=_fast_retry(6)
            ) as client:
                proxy.fault_rate = 0.999_999
                proxy.kinds = ("reset",)
                with pytest.raises((TransportError, CircuitOpenError)):
                    client.describe()
                assert breaker.opens >= 1
                proxy.fault_rate = 0.0
                assert client.describe()["videos"] == len(micro_universe)
                assert breaker.state == "closed"


class TestChaosCrawl:
    """The PR's acceptance scenario, as a test."""

    def test_parallel_chaos_crawl_collects_the_clean_video_set(
        self, micro_universe
    ):
        clean = ParallelSnowballCrawler(
            YoutubeService(micro_universe), workers=4, max_videos=10_000
        ).run()
        clean_ids = set(clean.dataset.video_ids())

        with YoutubeAPIServer(YoutubeService(micro_universe)) as running:
            with ChaosProxy(
                running.host,
                running.port,
                fault_rate=0.12,
                seed=7,
                burst_length=3,
                latency_seconds=0.001,
                stall_seconds=0.01,
            ) as proxy:
                breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.01)
                with ResilientYoutubeClient(
                    proxy.host,
                    proxy.port,
                    timeout=2.0,
                    breaker=breaker,
                    retry=_fast_retry(max_attempts=6),
                ) as client:
                    result = ParallelSnowballCrawler(
                        client, workers=4, max_videos=10_000
                    ).run()

        assert set(result.dataset.video_ids()) == clean_ids
        assert proxy.faults_injected > 0
        assert result.stats.reconnects > 0
        assert result.stats.breaker_opens > 0

    def test_sequential_chaos_crawl_also_survives(self, micro_universe):
        clean = SnowballCrawler(
            YoutubeService(micro_universe), max_videos=10_000
        ).run()
        with YoutubeAPIServer(YoutubeService(micro_universe)) as running:
            with ChaosProxy(
                running.host,
                running.port,
                fault_rate=0.1,
                seed=3,
                stall_seconds=0.01,
            ) as proxy:
                with ResilientYoutubeClient(
                    proxy.host, proxy.port, timeout=2.0, retry=_fast_retry(6)
                ) as client:
                    result = SnowballCrawler(client, max_videos=10_000).run()
        assert set(result.dataset.video_ids()) == set(clean.dataset.video_ids())

    def test_server_fully_down_terminates_with_partial_report(
        self, micro_universe
    ):
        with YoutubeAPIServer(YoutubeService(micro_universe)) as running:
            host, port = running.host, running.port
            running.stop()
            breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.05)
            with ResilientYoutubeClient(
                host,
                port,
                timeout=0.5,
                breaker=breaker,
                retry=RetryPolicy(
                    max_attempts=3,
                    backoff_base=0.005,
                    backoff_cap=0.02,
                    retryable=(TransportError, CircuitOpenError),
                ),
            ) as client:
                crawler = ParallelSnowballCrawler(
                    client, workers=4, max_videos=10_000, max_retries=2
                )
                result = crawler.run()  # must neither hang nor crash
        assert len(result.dataset) == 0
        assert result.stats.fetched == 0
        assert result.stats.transport_errors > 0
        assert result.stats.retries_exhausted > 0
        assert result.stats.breaker_opens > 0
