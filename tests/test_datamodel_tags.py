"""Unit and property tests for tag normalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel.tags import MAX_TAG_LENGTH, normalize_tag, normalize_tags


class TestNormalizeTag:
    def test_lowercases(self):
        assert normalize_tag("Justin BIEBER") == "justin bieber"

    def test_strips_and_collapses_whitespace(self):
        assert normalize_tag("  baile \t  funk  ") == "baile funk"

    def test_empty_string_stays_empty(self):
        assert normalize_tag("") == ""

    def test_whitespace_only_becomes_empty(self):
        assert normalize_tag(" \t\n ") == ""

    def test_truncates_to_max_length(self):
        long_tag = "x" * (MAX_TAG_LENGTH + 20)
        assert normalize_tag(long_tag) == "x" * MAX_TAG_LENGTH

    def test_truncation_strips_trailing_space(self):
        # A space landing exactly on the cut must not survive.
        raw = "a" * (MAX_TAG_LENGTH - 1) + " b"
        assert not normalize_tag(raw).endswith(" ")

    def test_casefold_handles_unicode(self):
        assert normalize_tag("STRASSE") == normalize_tag("strasse")
        assert normalize_tag("FAVELA") == "favela"

    def test_accents_preserved(self):
        # No de-accenting: 'futebol' and 'fútbol' are different tags.
        assert normalize_tag("Fútbol") == "fútbol"


class TestNormalizeTags:
    def test_deduplicates_keeping_first(self):
        assert normalize_tags(["Pop", "POP", "rock", "pop"]) == ("pop", "rock")

    def test_drops_empties(self):
        assert normalize_tags(["", "  ", "music"]) == ("music",)

    def test_preserves_order(self):
        assert normalize_tags(["c", "a", "b"]) == ("c", "a", "b")

    def test_empty_input(self):
        assert normalize_tags([]) == ()

    @settings(max_examples=100, deadline=None)
    @given(tags=st.lists(st.text(max_size=50)))
    def test_output_is_canonical_and_unique(self, tags):
        result = normalize_tags(tags)
        assert len(result) == len(set(result))
        for tag in result:
            assert tag == normalize_tag(tag)  # idempotent canonical form
            assert tag
            assert len(tag) <= MAX_TAG_LENGTH

    @settings(max_examples=50, deadline=None)
    @given(tags=st.lists(st.text(max_size=50)))
    def test_idempotent(self, tags):
        once = normalize_tags(tags)
        twice = normalize_tags(once)
        assert once == twice
