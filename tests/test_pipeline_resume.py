"""Resumable pipeline tests: stage skipping, quarantine, crash recovery."""

import json

import pytest

from repro.durability.fsfaults import FaultyFilesystem, SimulatedCrash
from repro.errors import ConfigError
from repro.pipeline import (
    MANIFEST_NAME,
    PIPELINE_STAGES,
    PipelineConfig,
    config_fingerprint,
    run_pipeline,
)
from repro.synth.presets import preset_config


@pytest.fixture(scope="module")
def config():
    return PipelineConfig(universe=preset_config("tiny"), checkpoint_every=25)


@pytest.fixture(scope="module")
def reference(config):
    """The in-memory run every resumable run must reproduce."""
    return run_pipeline(config)


def ids_of(result):
    return set(result.dataset.video_ids())


class TestResumableRun:
    def test_first_run_equals_in_memory(self, config, reference, tmp_path):
        result = run_pipeline(config, workdir=tmp_path)
        assert result.stages_skipped == ()
        assert result.quarantined == ()
        assert ids_of(result) == ids_of(reference)
        assert result.filter_report == reference.filter_report

    def test_artifacts_and_manifest_written(self, config, tmp_path):
        run_pipeline(config, workdir=tmp_path)
        names = {p.name for p in tmp_path.iterdir()}
        assert MANIFEST_NAME in names
        for artifact in (
            "universe.json.gz",
            "crawl.jsonl",
            "crawl_stats.json",
            "dataset.jsonl",
            "filter_report.json",
            "tag_views.json",
            "columnar.npz",
        ):
            assert artifact in names
            assert artifact + ".sha256" in names
        manifest = json.loads(
            (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert all(manifest["stages"][stage] for stage in PIPELINE_STAGES)
        assert manifest["fingerprint"] == config_fingerprint(config)

    def test_second_run_skips_every_stage(self, config, reference, tmp_path):
        run_pipeline(config, workdir=tmp_path)
        rerun = run_pipeline(config, workdir=tmp_path)
        assert rerun.stages_skipped == PIPELINE_STAGES
        assert ids_of(rerun) == ids_of(reference)
        assert rerun.crawl.stats.fetched == reference.crawl.stats.fetched

    def test_corrupt_artifact_quarantined_and_recomputed(
        self, config, reference, tmp_path
    ):
        run_pipeline(config, workdir=tmp_path)
        target = tmp_path / "dataset.jsonl"
        blob = bytearray(target.read_bytes())
        blob[60] ^= 0x08
        target.write_bytes(bytes(blob))

        rerun = run_pipeline(config, workdir=tmp_path)
        assert "filter" not in rerun.stages_skipped
        assert "crawl" in rerun.stages_skipped  # upstream stages untouched
        assert any("dataset.jsonl.quarantined" in q for q in rerun.quarantined)
        assert ids_of(rerun) == ids_of(reference)
        # The recomputed artifact verifies again.
        final = run_pipeline(config, workdir=tmp_path)
        assert final.stages_skipped == PIPELINE_STAGES

    def test_resume_reuses_columnar_artifact(self, config, reference, tmp_path):
        """A resumed run loads columnar.npz instead of re-vectorizing."""
        run_pipeline(config, workdir=tmp_path)
        mtime = (tmp_path / "columnar.npz").stat().st_mtime_ns
        rerun = run_pipeline(config, workdir=tmp_path)
        assert "reconstruct" in rerun.stages_skipped
        # Artifact untouched — the run loaded it rather than rewriting it.
        assert (tmp_path / "columnar.npz").stat().st_mtime_ns == mtime
        assert set(rerun.tag_table.tags()) == set(reference.tag_table.tags())
        for tag in reference.tag_table.tags():
            assert rerun.tag_table.total_views(tag) == pytest.approx(
                reference.tag_table.total_views(tag), rel=1e-9
            )

    def test_corrupt_columnar_quarantined_and_recomputed(
        self, config, reference, tmp_path
    ):
        run_pipeline(config, workdir=tmp_path)
        target = tmp_path / "columnar.npz"
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))

        rerun = run_pipeline(config, workdir=tmp_path)
        assert "reconstruct" not in rerun.stages_skipped
        assert "crawl" in rerun.stages_skipped  # upstream stages untouched
        assert any("columnar.npz.quarantined" in q for q in rerun.quarantined)
        assert set(rerun.tag_table.tags()) == set(reference.tag_table.tags())
        # The recomputed artifact verifies (and is reused) again.
        final = run_pipeline(config, workdir=tmp_path)
        assert final.stages_skipped == PIPELINE_STAGES

    def test_fingerprint_mismatch_is_config_error(self, config, tmp_path):
        run_pipeline(config, workdir=tmp_path)
        other = PipelineConfig(
            universe=preset_config("tiny"), crawl_budget=10
        )
        assert config_fingerprint(other) != config_fingerprint(config)
        with pytest.raises(ConfigError, match="different pipeline config"):
            run_pipeline(other, workdir=tmp_path)

    def test_crash_mid_crawl_then_resume(self, config, reference, tmp_path):
        fs = FaultyFilesystem(seed=11, fault_rate=0.0, crash_at_op=12)
        with pytest.raises(SimulatedCrash):
            run_pipeline(config, workdir=tmp_path, fs=fs)
        assert fs.crashed

        resumed = run_pipeline(config, workdir=tmp_path)
        assert ids_of(resumed) == ids_of(reference)
        assert resumed.filter_report == reference.filter_report

    def test_in_memory_mode_unchanged(self, config, reference):
        result = run_pipeline(config)
        assert result.stages_skipped == ()
        assert ids_of(result) == ids_of(reference)


class TestOutOfCoreMode:
    """engine="chunked": streamed aggregation + memmap resume, same table."""

    @pytest.fixture(scope="class")
    def chunked_config(self):
        return PipelineConfig(
            universe=preset_config("tiny"),
            checkpoint_every=25,
            engine="chunked",
            chunk_rows=64,
        )

    def test_chunked_run_equals_default(
        self, config, reference, chunked_config, tmp_path
    ):
        result = run_pipeline(chunked_config, workdir=tmp_path)
        assert ids_of(result) == ids_of(reference)
        assert set(result.tag_table.tags()) == set(
            reference.tag_table.tags()
        )
        for tag in reference.tag_table.tags():
            # Bit-identical float64: streamed Eq. (3) is the same
            # arithmetic, not an approximation.
            assert result.tag_table.total_views(
                tag
            ) == reference.tag_table.total_views(tag)

    def test_chunked_resume_skips_and_matches(
        self, chunked_config, reference, tmp_path
    ):
        first = run_pipeline(chunked_config, workdir=tmp_path)
        rerun = run_pipeline(chunked_config, workdir=tmp_path)
        assert rerun.stages_skipped == PIPELINE_STAGES
        for tag in first.tag_table.tags():
            assert rerun.tag_table.total_views(
                tag
            ) == first.tag_table.total_views(tag)

    def test_engine_choice_changes_fingerprint(self, config, chunked_config):
        assert config_fingerprint(chunked_config) != config_fingerprint(
            config
        )

    def test_default_engine_fingerprint_is_stable(self, config):
        explicit = PipelineConfig(
            universe=preset_config("tiny"),
            checkpoint_every=25,
            engine="auto",
            columnar_dtype="float64",
        )
        # Defaults are not stamped: old workdirs keep their fingerprints.
        assert config_fingerprint(explicit) == config_fingerprint(config)

    def test_bad_engine_rejected(self):
        bad = PipelineConfig(universe=preset_config("tiny"), engine="quantum")
        with pytest.raises(ConfigError, match="unknown engine"):
            run_pipeline(bad)

    def test_bad_dtype_rejected(self):
        bad = PipelineConfig(
            universe=preset_config("tiny"), columnar_dtype="float16"
        )
        with pytest.raises(ConfigError, match="columnar_dtype"):
            run_pipeline(bad)
