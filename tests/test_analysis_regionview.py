"""Tests for regional view aggregation."""

import numpy as np
import pytest

from repro.analysis.regionview import (
    CONTINENT_GROUPS,
    continent_shares,
    dataset_continent_shares,
    dataset_region_shares,
    region_shares,
)
from repro.errors import AnalysisError
from repro.world.regions import REGIONS


class TestRegionShares:
    def test_shares_sum_to_one(self, registry):
        views = np.ones(len(registry))
        shares = region_shares(views, registry)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == set(REGIONS)

    def test_single_country_maps_to_its_region(self, registry):
        views = np.zeros(len(registry))
        views[registry.index_of("BR")] = 100.0
        shares = region_shares(views, registry)
        assert shares["latin-america"] == pytest.approx(1.0)

    def test_wrong_length_rejected(self, registry):
        with pytest.raises(AnalysisError):
            region_shares(np.ones(3), registry)

    def test_zero_mass_rejected(self, registry):
        with pytest.raises(AnalysisError):
            region_shares(np.zeros(len(registry)), registry)


class TestContinentShares:
    def test_groups_cover_all_regions(self):
        grouped = [region for regions in CONTINENT_GROUPS.values() for region in regions]
        assert sorted(grouped) == sorted(REGIONS)

    def test_shares_sum_to_one(self, registry):
        views = np.ones(len(registry))
        shares = continent_shares(views, registry)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_europe_aggregates_subregions(self, registry):
        views = np.zeros(len(registry))
        views[registry.index_of("FR")] = 1.0  # western-europe
        views[registry.index_of("SE")] = 1.0  # northern-europe
        views[registry.index_of("PL")] = 2.0  # eastern-europe
        shares = continent_shares(views, registry)
        assert shares["Europe"] == pytest.approx(1.0)


class TestDatasetAggregation:
    def test_dataset_region_shares(self, tiny_pipeline):
        shares = dataset_region_shares(
            tiny_pipeline.dataset, tiny_pipeline.reconstructor
        )
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(value >= 0 for value in shares.values())

    def test_major_markets_dominate(self, tiny_pipeline):
        # Sandvine-flavoured sanity: NA + Europe + Asia-Pacific carry most
        # of the traffic in a 2011-like world.
        shares = dataset_continent_shares(
            tiny_pipeline.dataset, tiny_pipeline.reconstructor
        )
        big_three = (
            shares["North America"]
            + shares["Europe"]
            + shares["Asia-Pacific"]
        )
        assert big_three > 0.5

    def test_empty_dataset_rejected(self, tiny_pipeline):
        from repro.datamodel.dataset import Dataset

        with pytest.raises(AnalysisError):
            dataset_region_shares(Dataset(), tiny_pipeline.reconstructor)
