"""Unit tests for video generation and the forward Eq. (1) quantization."""

import numpy as np
import pytest

from repro.datamodel.popularity import MAX_INTENSITY
from repro.datamodel.video import is_valid_video_id
from repro.errors import ConfigError
from repro.synth.rng import spawn_rng
from repro.synth.tagmodel import TagVocabulary
from repro.synth.videomodel import SynthVideo, VideoGenerator, quantize_popularity
from repro.world.traffic import default_traffic_model


@pytest.fixture(scope="module")
def vocabulary():
    return TagVocabulary(n_tags=300, rng=spawn_rng(7, "vm-vocab"))


@pytest.fixture(scope="module")
def generator(vocabulary):
    return VideoGenerator(vocabulary, rng=spawn_rng(7, "vm-gen"))


@pytest.fixture(scope="module")
def videos(generator):
    return generator.generate(300)


class TestQuantizePopularity:
    def test_always_saturates_at_61(self, traffic, registry):
        shares = np.random.default_rng(0).dirichlet(np.ones(len(registry)))
        vector = quantize_popularity(shares, traffic, registry)
        assert vector.max_intensity() == MAX_INTENSITY

    def test_uniform_shares_peak_in_smallest_market(self, traffic, registry):
        # With equal views everywhere, intensity = 1/prior peaks where the
        # prior is smallest — the USA-vs-Singapore effect inverted.
        shares = np.full(len(registry), 1.0 / len(registry))
        vector = quantize_popularity(shares, traffic, registry)
        smallest_market = min(registry.codes(), key=traffic.share)
        assert vector[smallest_market] == MAX_INTENSITY

    def test_prior_shaped_shares_give_flat_61(self, traffic, registry):
        # A video whose views exactly track the prior has intensity 61
        # everywhere (ratio is constant).
        vector = quantize_popularity(traffic.as_vector(), traffic, registry)
        assert all(value == MAX_INTENSITY for _, value in vector)

    def test_tiny_shares_round_to_zero_and_vanish(self, traffic, registry):
        shares = np.full(len(registry), 1e-9)
        shares[registry.index_of("BR")] = 1.0
        shares = shares / shares.sum()
        vector = quantize_popularity(shares, traffic, registry)
        assert vector["BR"] == MAX_INTENSITY
        assert len(vector) < len(registry)


class TestGeneratedPopulation:
    def test_ids_valid_and_unique(self, videos):
        ids = [video.video_id for video in videos]
        assert len(ids) == len(set(ids))
        assert all(is_valid_video_id(video_id) for video_id in ids)

    def test_true_shares_are_distributions(self, videos, registry):
        for video in videos[:50]:
            assert video.true_shares.shape == (len(registry),)
            assert video.true_shares.sum() == pytest.approx(1.0)
            assert np.all(video.true_shares > 0)

    def test_views_positive_and_heavy_tailed(self, videos):
        views = np.array([video.views for video in videos])
        assert np.all(views >= 1)
        assert views.max() > 20 * np.median(views)

    def test_some_videos_untagged(self, generator, vocabulary):
        heavy_untagged = VideoGenerator(
            vocabulary, rng=spawn_rng(8, "untag"), p_no_tags=0.5
        ).generate(200)
        untagged = [video for video in heavy_untagged if not video.tags]
        assert 40 < len(untagged) < 160

    def test_missing_map_rate_close_to_config(self, videos):
        missing = sum(1 for video in videos if video.popularity is None)
        assert 0.2 < missing / len(videos) < 0.5  # config: 0.344

    def test_popularity_saturated_when_present(self, videos):
        for video in videos:
            if video.popularity is not None:
                assert video.popularity.is_saturated()

    def test_upload_dates_in_window(self, videos):
        for video in videos[:50]:
            year = int(video.upload_date[:4])
            assert 2006 <= year <= 2010

    def test_to_video_strips_ground_truth(self, videos):
        observable = videos[0].to_video()
        assert observable.video_id == videos[0].video_id
        assert not hasattr(observable, "true_shares")

    def test_true_views_by_country_sums_to_views(self, videos):
        video = videos[0]
        assert video.true_views_by_country().sum() == pytest.approx(video.views)


class TestTagCoupling:
    def test_high_coupling_follows_primary_tag(self, vocabulary, registry):
        generator = VideoGenerator(
            vocabulary,
            rng=spawn_rng(9, "coupled"),
            tag_coupling=5000.0,
        )
        videos = [v for v in generator.generate(100) if v.tags]
        from repro.analysis.metrics import total_variation

        distances = []
        for video in videos:
            primary_profile = vocabulary.get(video.tags[0]).profile.shares
            distances.append(total_variation(video.true_shares, primary_profile))
        # Tight coupling: mixture still includes secondary tags, but the
        # distribution stays near the primary profile on average.
        assert np.mean(distances) < 0.45

    def test_invalid_configs_rejected(self, vocabulary):
        with pytest.raises(ConfigError):
            VideoGenerator(vocabulary, mean_tags=0.5)
        with pytest.raises(ConfigError):
            VideoGenerator(vocabulary, p_no_tags=1.0)
        with pytest.raises(ConfigError):
            VideoGenerator(vocabulary, p_missing_map=-0.1)
        with pytest.raises(ConfigError):
            VideoGenerator(vocabulary, tag_coupling=0.0)
        with pytest.raises(ConfigError):
            VideoGenerator(vocabulary, tag_coherence=2.0)
