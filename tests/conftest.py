"""Shared fixtures.

Heavy objects (universe, crawled dataset, tag table) are session-scoped:
they are deterministic (fixed seeds) and read-only in tests, so building
them once keeps the suite fast.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.api.service import YoutubeService
from repro.crawler.snowball import SnowballCrawler
from repro.pipeline import PipelineConfig, run_pipeline
from repro.placement.predictor import TagGeoPredictor
from repro.placement.workload import WorkloadGenerator
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor
from repro.synth.presets import preset_config
from repro.synth.universe import UniverseConfig, build_universe
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model

# Hypothesis profiles: "ci" is fully derandomized so stateful suites
# replay identically on every CI run; "dev" (default) keeps random
# exploration but drops the deadline (session-scoped fixtures make the
# first example of a run look slow).
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def traffic(registry):
    return default_traffic_model(registry)


@pytest.fixture(scope="session")
def tiny_universe():
    """A 400-video universe (the ``tiny`` preset)."""
    return build_universe(preset_config("tiny"))


@pytest.fixture(scope="session")
def tiny_service(tiny_universe):
    """Fault-free unmetered service over the tiny universe."""
    return YoutubeService(tiny_universe)


@pytest.fixture(scope="session")
def tiny_pipeline():
    """A full pipeline run on the tiny preset (exhaustive crawl)."""
    return run_pipeline(PipelineConfig(universe=preset_config("tiny")))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_pipeline):
    """The filtered dataset from the tiny pipeline."""
    return tiny_pipeline.dataset


@pytest.fixture(scope="session")
def tiny_reconstructor(tiny_pipeline):
    return tiny_pipeline.reconstructor


@pytest.fixture(scope="session")
def tiny_tag_table(tiny_pipeline):
    return tiny_pipeline.tag_table


@pytest.fixture(scope="session")
def tiny_predictor(tiny_pipeline):
    """The tag → geography predictor over the tiny pipeline's table.

    Session-scoped: it is read-only and several placement/serving suites
    used to rebuild an identical instance each.
    """
    return TagGeoPredictor(tiny_pipeline.tag_table)


@pytest.fixture(scope="session")
def tiny_trace(tiny_pipeline):
    """Cached request-trace factory over the tiny universe.

    ``tiny_trace(n, seed=..., restrict=True)`` returns the same object
    for the same arguments, so suites that previously each generated
    near-identical traces share one. ``restrict`` limits the workload to
    the filtered catalogue (what the placement suites simulate).
    """
    cache = {}

    def _trace(n_requests: int, seed: int = 0, restrict: bool = True):
        key = (n_requests, seed, restrict)
        if key not in cache:
            video_ids = (
                tiny_pipeline.dataset.video_ids() if restrict else None
            )
            cache[key] = WorkloadGenerator(
                tiny_pipeline.universe, video_ids, seed=seed
            ).generate(n_requests)
        return cache[key]

    return _trace


@pytest.fixture()
def fresh_service(tiny_universe):
    """A per-test service (quota/fault state must not leak across tests)."""
    return YoutubeService(tiny_universe)
