"""Shared fixtures.

Heavy objects (universe, crawled dataset, tag table) are session-scoped:
they are deterministic (fixed seeds) and read-only in tests, so building
them once keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.api.service import YoutubeService
from repro.crawler.snowball import SnowballCrawler
from repro.pipeline import PipelineConfig, run_pipeline
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor
from repro.synth.presets import preset_config
from repro.synth.universe import UniverseConfig, build_universe
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def traffic(registry):
    return default_traffic_model(registry)


@pytest.fixture(scope="session")
def tiny_universe():
    """A 400-video universe (the ``tiny`` preset)."""
    return build_universe(preset_config("tiny"))


@pytest.fixture(scope="session")
def tiny_service(tiny_universe):
    """Fault-free unmetered service over the tiny universe."""
    return YoutubeService(tiny_universe)


@pytest.fixture(scope="session")
def tiny_pipeline():
    """A full pipeline run on the tiny preset (exhaustive crawl)."""
    return run_pipeline(PipelineConfig(universe=preset_config("tiny")))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_pipeline):
    """The filtered dataset from the tiny pipeline."""
    return tiny_pipeline.dataset


@pytest.fixture(scope="session")
def tiny_reconstructor(tiny_pipeline):
    return tiny_pipeline.reconstructor


@pytest.fixture(scope="session")
def tiny_tag_table(tiny_pipeline):
    return tiny_pipeline.tag_table


@pytest.fixture()
def fresh_service(tiny_universe):
    """A per-test service (quota/fault state must not leak across tests)."""
    return YoutubeService(tiny_universe)
