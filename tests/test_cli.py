"""CLI tests (in-process via main(argv))."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def crawl_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "crawl.jsonl"
    code = main(["crawl", "--preset", "tiny", "--out", str(path), "--max-videos", "150"])
    assert code == 0
    return path


class TestCrawlCommand:
    def test_writes_jsonl(self, crawl_file, capsys):
        assert crawl_file.exists()
        assert sum(1 for _ in crawl_file.open()) == 150

    def test_seed_override(self, tmp_path, capsys):
        out = tmp_path / "seeded.jsonl"
        code = main(
            [
                "crawl", "--preset", "tiny", "--out", str(out),
                "--max-videos", "20", "--seed", "123",
            ]
        )
        assert code == 0
        assert out.exists()


class TestAnalysisCommands:
    def test_stats(self, crawl_file, capsys):
        assert main(["stats", "--in", str(crawl_file)]) == 0
        output = capsys.readouterr().out
        assert "filter funnel" in output
        assert "unique tags" in output

    def test_topvideo(self, crawl_file, capsys):
        assert main(["topvideo", "--in", str(crawl_file)]) == 0
        output = capsys.readouterr().out
        assert "Popularity map" in output
        assert "legend" in output

    def test_toptags(self, crawl_file, capsys):
        assert main(["toptags", "--in", str(crawl_file), "--count", "5"]) == 0
        output = capsys.readouterr().out
        assert "rank" in output
        assert len(output.strip().splitlines()) == 6  # header + 5 rows

    def test_tag_found(self, crawl_file, capsys):
        assert main(["tag", "--in", str(crawl_file), "music"]) == 0
        output = capsys.readouterr().out
        assert "'music'" in output

    def test_tag_missing_returns_error_code(self, crawl_file, capsys):
        assert main(["tag", "--in", str(crawl_file), "no-such-tag-xyz"]) == 1

    def test_missing_input_file_is_clean_error(self, tmp_path, capsys):
        assert main(["stats", "--in", str(tmp_path / "none.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDemoCommand:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--preset", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "filter funnel" in output
        assert "Popularity map" in output


class TestEngineFlags:
    """The engine/precision knobs ride every analysis command."""

    def test_chunked_engine_matches_default(self, crawl_file, capsys):
        assert main(["toptags", "--in", str(crawl_file), "--count", "5"]) == 0
        default_out = capsys.readouterr().out
        assert (
            main(
                [
                    "toptags", "--in", str(crawl_file), "--count", "5",
                    "--engine", "chunked", "--chunk-rows", "16",
                ]
            )
            == 0
        )
        # Bit-identical float64 tables → identical printed rankings.
        assert capsys.readouterr().out == default_out

    def test_float32_runs(self, crawl_file, capsys):
        assert (
            main(
                [
                    "tag", "--in", str(crawl_file), "music",
                    "--engine", "chunked", "--dtype", "float32",
                ]
            )
            == 0
        )
        assert "'music'" in capsys.readouterr().out

    def test_unknown_engine_rejected(self, crawl_file):
        with pytest.raises(SystemExit):
            main(["stats", "--in", str(crawl_file), "--engine", "quantum"])

    def test_unknown_dtype_rejected(self, crawl_file):
        with pytest.raises(SystemExit):
            main(["tag", "--in", str(crawl_file), "music", "--dtype", "f16"])
