"""Tests for the token-bucket politeness limiter."""

import pytest

from repro.api.service import YoutubeService
from repro.crawler.politeness import TokenBucket
from repro.crawler.snowball import SnowballCrawler
from repro.errors import ConfigError


class TestTokenBucket:
    def test_burst_goes_free(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        assert [bucket.acquire(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]

    def test_fourth_request_waits(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        for _ in range(3):
            bucket.acquire(0.0)
        assert bucket.acquire(0.0) == pytest.approx(0.5)

    def test_steady_state_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        clock = 0.0
        total_wait = 0.0
        for _ in range(100):
            wait = bucket.acquire(clock)
            clock += wait
            total_wait += wait
        # 100 requests at 10 rps from a single-token bucket: ~9.9 s.
        assert total_wait == pytest.approx(9.9, rel=0.02)

    def test_idle_refills_bucket(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        bucket.acquire(0.0)
        bucket.acquire(0.0)
        # After 5 idle seconds the bucket is full again (capped at burst).
        assert bucket.acquire(5.0) == 0.0
        assert bucket.acquire(5.0) == 0.0
        assert bucket.acquire(5.0) > 0.0

    def test_clock_must_be_monotone(self):
        bucket = TokenBucket(rate=1.0)
        bucket.acquire(10.0)
        with pytest.raises(ConfigError):
            bucket.acquire(5.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0)


class TestCrawlerIntegration:
    def test_unthrottled_crawl_pays_nothing(self, tiny_universe):
        result = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=50
        ).run()
        assert result.stats.politeness_wait_seconds == 0.0

    def test_throttled_crawl_accounts_wait(self, tiny_universe):
        result = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=50,
            requests_per_second=10.0,
        ).run()
        # 50 videos → ≥100 requests (metadata + related pages + seeds);
        # at 10 rps with burst 5, total wait ≈ (requests - 5) / 10.
        assert result.stats.politeness_wait_seconds > 5.0

    def test_throttling_does_not_change_results(self, tiny_universe):
        fast = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=60
        ).run()
        polite = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=60,
            requests_per_second=5.0,
        ).run()
        assert polite.dataset.video_ids() == fast.dataset.video_ids()

    def test_higher_rate_waits_less(self, tiny_universe):
        slow = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=40,
            requests_per_second=2.0,
        ).run()
        fast = SnowballCrawler(
            YoutubeService(tiny_universe),
            max_videos=40,
            requests_per_second=20.0,
        ).run()
        assert (
            fast.stats.politeness_wait_seconds
            < slow.stats.politeness_wait_seconds
        )


class TestClockedTokenBucket:
    """The bucket bound to an injectable clock (no wall-time coupling)."""

    def test_burst_is_free_on_manual_clock(self):
        from repro.clock import ManualClock
        from repro.crawler.politeness import ClockedTokenBucket

        clock = ManualClock()
        bucket = ClockedTokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert clock.sleeps == []
        assert bucket.wait_seconds == 0.0

    def test_throttle_paid_through_clock_sleep(self):
        from repro.clock import ManualClock
        from repro.crawler.politeness import ClockedTokenBucket

        clock = ManualClock()
        bucket = ClockedTokenBucket(rate=2.0, burst=1, clock=clock)
        bucket.acquire()
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)
        assert clock.sleeps == [pytest.approx(0.5)]
        assert bucket.wait_seconds == pytest.approx(0.5)

    def test_steady_state_rate_advances_simulated_time(self):
        from repro.clock import ManualClock
        from repro.crawler.politeness import ClockedTokenBucket

        clock = ManualClock()
        bucket = ClockedTokenBucket(rate=10.0, burst=1, clock=clock)
        for _ in range(101):
            bucket.acquire()
        # 100 throttled requests at 10 rps: ten simulated seconds, paid
        # instantly on the manual clock.
        assert clock.now() == pytest.approx(10.0)
        assert bucket.wait_seconds == pytest.approx(10.0)
