"""Unit tests for the simulated YouTube service."""

import pytest

from repro.api.faults import FaultInjector
from repro.api.quota import QuotaBudget
from repro.api.service import MAX_RESULTS_CAP, YoutubeService
from repro.chartmap.mapchart import parse_map_chart_url, popularity_from_chart
from repro.errors import (
    BadRequestError,
    QuotaExceededError,
    TransientAPIError,
    VideoNotFoundError,
)


class TestGetVideo:
    def test_returns_resource_matching_universe(self, fresh_service, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        resource = fresh_service.get_video(video_id)
        synth = tiny_universe.get(video_id)
        assert resource.video_id == video_id
        assert resource.view_count == synth.views
        assert resource.tags == synth.tags

    def test_unknown_video_404(self, fresh_service):
        with pytest.raises(VideoNotFoundError):
            fresh_service.get_video("AAAAAAAAAAA")

    def test_map_url_decodes_to_universe_popularity(
        self, fresh_service, tiny_universe
    ):
        for video_id in tiny_universe.video_ids():
            synth = tiny_universe.get(video_id)
            if synth.popularity is not None and not synth.popularity.is_empty():
                resource = fresh_service.get_video(video_id)
                decoded = popularity_from_chart(
                    parse_map_chart_url(resource.stats_map_url)
                )
                assert decoded == synth.popularity
                break
        else:
            pytest.fail("no video with a popularity map in tiny universe")

    def test_missing_map_gives_none_url(self, fresh_service, tiny_universe):
        for video_id in tiny_universe.video_ids():
            if tiny_universe.get(video_id).popularity is None:
                resource = fresh_service.get_video(video_id)
                assert resource.stats_map_url is None
                break
        else:
            pytest.fail("no map-less video in tiny universe")


class TestRelatedVideos:
    def test_pagination_covers_sidebar(self, fresh_service, tiny_universe):
        video_id = tiny_universe.video_ids()[0]
        expected = tiny_universe.get(video_id).related_ids
        collected = []
        token = None
        while True:
            page = fresh_service.related_videos(
                video_id, page_token=token, max_results=7
            )
            collected.extend(page.items)
            token = page.next_page_token
            if token is None:
                break
        assert tuple(collected) == expected

    def test_unknown_video_404(self, fresh_service):
        with pytest.raises(VideoNotFoundError):
            fresh_service.related_videos("AAAAAAAAAAA")

    def test_oversized_page_rejected(self, fresh_service, tiny_universe):
        with pytest.raises(BadRequestError):
            fresh_service.related_videos(
                tiny_universe.video_ids()[0], max_results=MAX_RESULTS_CAP + 1
            )


class TestMostPopular:
    def test_matches_universe_ranking(self, fresh_service, tiny_universe):
        page = fresh_service.most_popular("BR", max_results=10)
        assert list(page.items) == tiny_universe.most_popular("BR", 10)

    def test_oversized_page_rejected(self, fresh_service):
        with pytest.raises(BadRequestError):
            fresh_service.most_popular("BR", max_results=999)


class TestQuotaAndFaults:
    def test_quota_charged_per_request(self, tiny_universe):
        service = YoutubeService(tiny_universe, quota=QuotaBudget(limit=4))
        service.get_video(tiny_universe.video_ids()[0])  # 1 unit
        service.most_popular("US")  # 3 units
        with pytest.raises(QuotaExceededError):
            service.get_video(tiny_universe.video_ids()[1])

    def test_failed_request_still_charges_quota(self, tiny_universe):
        service = YoutubeService(
            tiny_universe,
            quota=QuotaBudget(limit=100),
            faults=FaultInjector(rate=0.999_999, seed=1),
        )
        with pytest.raises(TransientAPIError):
            service.get_video(tiny_universe.video_ids()[0])
        assert service.quota.used == 1
        assert service.requests_served == 0

    def test_request_counter_counts_successes(self, tiny_universe):
        service = YoutubeService(tiny_universe)
        service.get_video(tiny_universe.video_ids()[0])
        service.most_popular("US")
        assert service.requests_served == 2
