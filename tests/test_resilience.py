"""Tests for the unified retry policy and circuit breaker."""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigError,
    QuotaExceededError,
    TransientAPIError,
    TransportError,
)
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_succeeds_first_try_without_sleeping(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, sleep=sleeps.append)
        assert policy.run(lambda: 42) == 42
        assert sleeps == []

    def test_retries_until_success(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, backoff_base=1.0, sleep=sleeps.append
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientAPIError("boom")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert calls["n"] == 3
        assert sleeps == [1.0, 2.0]  # exponential, no jitter by default

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, sleep=lambda s: None)
        with pytest.raises(TransportError):
            policy.run(self._always_transport_error)

    @staticmethod
    def _always_transport_error():
        raise TransportError("gone")

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)

        def quota():
            calls["n"] += 1
            raise QuotaExceededError("spent")

        with pytest.raises(QuotaExceededError):
            policy.run(quota)
        assert calls["n"] == 1

    def test_on_failure_sees_every_failure_and_final_none_delay(self):
        seen = []
        policy = RetryPolicy(
            max_attempts=3, backoff_base=1.0, sleep=lambda s: None
        )
        with pytest.raises(TransientAPIError):
            policy.run(
                self._always_transient,
                on_failure=lambda exc, attempt, delay: seen.append(
                    (attempt, delay)
                ),
            )
        assert seen == [(0, 1.0), (1, 2.0), (2, None)]

    @staticmethod
    def _always_transient():
        raise TransientAPIError("flap")

    def test_backoff_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=3.0, sleep=lambda s: None)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 3.0
        assert policy.delay(10) == 3.0

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=9, sleep=lambda s: None)
        b = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=9, sleep=lambda s: None)
        delays_a = [a.delay(2) for _ in range(10)]
        delays_b = [b.delay(2) for _ in range(10)]
        assert delays_a == delays_b  # same seed, same draw stream
        assert all(2.0 <= d <= 4.0 for d in delays_a)
        assert len(set(delays_a)) > 1  # draws actually vary
        other = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=10, sleep=lambda s: None)
        assert [other.delay(2) for _ in range(10)] != delays_a

    def test_circuit_open_error_is_retryable_by_default(self):
        policy = RetryPolicy(sleep=lambda s: None)
        assert policy.is_retryable(CircuitOpenError("open"))
        assert policy.is_retryable(TransportError("lost"))
        assert policy.is_retryable(TransientAPIError("503"))
        assert not policy.is_retryable(QuotaExceededError("spent"))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(retryable=())


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        breaker.allow()  # must not raise

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)
        breaker.allow()  # the probe is admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_limits_concurrent_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_max_calls=1, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # only one probe at a time

    def test_half_open_single_probe_even_with_larger_max_calls(self):
        # Regression: half_open_max_calls > 1 used to admit that many
        # concurrent callers, every one treated as a probe; a flurry of
        # stale successes could then close a breaker that had seen one
        # lucky call. The half-open state now holds exactly one probe in
        # flight regardless of the configured value.
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_max_calls=3, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()  # the single probe slot
        for _ in range(3):
            with pytest.raises(CircuitOpenError):
                breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_stale_success_while_open_does_not_close(self):
        # A call admitted before the breaker tripped reports back after
        # it opened: that success is stale evidence, not a probe, and
        # must not slam the breaker shut.
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.allow()  # stale call admitted while closed
        breaker.record_failure()  # another call trips the breaker
        assert breaker.state == OPEN
        breaker.record_success()  # the stale call comes back happy
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_cancelled_probe_releases_the_half_open_slot(self):
        # A hedged probe cancelled mid-flight has no verdict; it must
        # hand the single half-open slot back or the breaker would
        # reject probes forever.
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()  # probe admitted...
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.record_cancelled()  # ...then cancelled without a verdict
        assert breaker.state == HALF_OPEN
        breaker.allow()  # slot is free for the next probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_record_cancelled_is_a_noop_outside_half_open(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.allow()
        breaker.record_cancelled()
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.record_cancelled()
        assert breaker.state == OPEN

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_call_wrapper_records_outcomes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=9.0, clock=clock)
        assert breaker.call(lambda: "fine") == "fine"
        with pytest.raises(TransportError):
            breaker.call(self._dead)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    @staticmethod
    def _dead():
        raise TransportError("down")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(reset_timeout=-1.0)
        with pytest.raises(ConfigError):
            CircuitBreaker(half_open_max_calls=0)


class TestManualClockWiring:
    """The injectable-clock seam: no component touches wall time."""

    def test_retry_pays_backoff_through_the_clock(self):
        from repro.clock import ManualClock

        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=4, backoff_base=0.5, clock=clock
        )
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 4:
                raise TransientAPIError("try again")
            return "done"

        assert policy.run(flaky) == "done"
        # Exponential schedule, recorded instead of slept.
        assert clock.sleeps == [0.5, 1.0, 2.0]
        assert clock.now() == pytest.approx(3.5)

    def test_explicit_sleep_beats_clock(self):
        from repro.clock import ManualClock

        clock = ManualClock()
        sleeps = []
        policy = RetryPolicy(
            max_attempts=2,
            backoff_base=1.0,
            sleep=sleeps.append,
            clock=clock,
        )
        with pytest.raises(TransientAPIError):
            policy.run(self._always_transient)
        assert sleeps == [1.0]
        assert clock.sleeps == []  # the injected sleep won

    @staticmethod
    def _always_transient():
        raise TransientAPIError("no luck")

    def test_breaker_accepts_a_clock_object(self):
        from repro.clock import ManualClock

        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(29.9)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(0.2)
        breaker.allow()  # reset timeout elapsed: admits a probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
