"""Unit tests for the columnar materialization and its .npz persistence."""

import numpy as np
import pytest

from repro.datamodel.dataset import Dataset
from repro.datamodel.popularity import PopularityVector
from repro.datamodel.video import Video
from repro.engine import (
    ColumnarDataset,
    build_columnar,
    load_columnar,
    save_columnar,
)
from repro.engine.compute import tag_segment_sums
from repro.errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ReconstructionError,
)

IDS = [f"AAAAAAAAA{i:02d}" for i in range(12)]


def video(video_id, views, tags, pop):
    return Video(
        video_id=video_id,
        title="t",
        uploader="u",
        upload_date="2010-01-01",
        views=views,
        tags=tags,
        popularity=PopularityVector(pop) if pop is not None else None,
    )


@pytest.fixture()
def small_dataset():
    return Dataset(
        [
            video(IDS[0], 100, ("a", "b"), {"BR": 61}),
            video(IDS[1], 50, ("b",), {"US": 61, "BR": 10}),
            video(IDS[2], 10, ("c",), None),  # no map → no row
            video(IDS[3], 7, (), {"US": 61}),  # tagless → row, no CSR entry
            video(IDS[4], 3, ("a",), {"JP": 30}),
        ]
    )


class TestBuild:
    def test_rows_are_eligible_videos_in_order(self, small_dataset, registry):
        columnar = build_columnar(small_dataset, registry)
        assert columnar.video_ids == (IDS[0], IDS[1], IDS[3], IDS[4])
        assert columnar.n_videos == 4
        assert columnar.n_countries == len(registry)
        np.testing.assert_array_equal(columnar.views, [100, 50, 7, 3])

    def test_pop_matrix_matches_popularity_vectors(
        self, small_dataset, registry
    ):
        columnar = build_columnar(small_dataset, registry)
        assert columnar.pop[0, registry.index_of("BR")] == 61
        assert columnar.pop[1, registry.index_of("US")] == 61
        assert columnar.pop[1, registry.index_of("BR")] == 10
        assert columnar.pop[3, registry.index_of("JP")] == 30
        # Exactly the five recorded intensities were scattered in.
        assert np.count_nonzero(columnar.pop) == 5

    def test_csr_groups_videos_by_tag(self, small_dataset, registry):
        columnar = build_columnar(small_dataset, registry)
        assert columnar.tags == ("a", "b")  # "c"'s only video had no map
        segments = {
            tag: list(
                columnar.indices[
                    columnar.indptr[i]:columnar.indptr[i + 1]
                ]
            )
            for i, tag in enumerate(columnar.tags)
        }
        # Rows: 0 = IDS[0], 1 = IDS[1], 2 = IDS[3] (tagless), 3 = IDS[4].
        assert segments == {"a": [0, 3], "b": [0, 1]}
        np.testing.assert_array_equal(columnar.tag_video_counts(), [2, 2])

    def test_tagless_row_in_no_segment(self, small_dataset, registry):
        columnar = build_columnar(small_dataset, registry)
        assert 2 not in set(columnar.indices)

    def test_duplicate_tags_counted_once(self, registry):
        clean = video(IDS[0], 100, ("a",), {"BR": 61})
        object.__setattr__(clean, "tags", ("a", "a", "a"))
        columnar = build_columnar([clean], registry)
        assert columnar.tags == ("a",)
        np.testing.assert_array_equal(columnar.tag_video_counts(), [1])

    def test_sharded_build_identical_to_serial(self, tiny_dataset, registry):
        serial = build_columnar(tiny_dataset, registry, workers=1)
        sharded = build_columnar(tiny_dataset, registry, workers=4)
        assert serial.video_ids == sharded.video_ids
        assert serial.tags == sharded.tags
        np.testing.assert_array_equal(serial.pop, sharded.pop)
        np.testing.assert_array_equal(serial.views, sharded.views)
        np.testing.assert_array_equal(serial.indptr, sharded.indptr)
        np.testing.assert_array_equal(serial.indices, sharded.indices)

    @pytest.mark.parametrize("parallel", ["thread", "process"])
    def test_parallel_fill_identical_to_serial(
        self, tiny_dataset, registry, parallel
    ):
        serial = build_columnar(
            tiny_dataset, registry, workers=1, parallel="serial"
        )
        filled = build_columnar(
            tiny_dataset, registry, workers=2, parallel=parallel
        )
        assert serial.video_ids == filled.video_ids
        assert serial.tags == filled.tags
        np.testing.assert_array_equal(serial.pop, filled.pop)
        np.testing.assert_array_equal(serial.views, filled.views)
        np.testing.assert_array_equal(serial.indptr, filled.indptr)
        np.testing.assert_array_equal(serial.indices, filled.indices)

    def test_bad_worker_count_rejected(self, small_dataset, registry):
        with pytest.raises(ReconstructionError, match="workers"):
            build_columnar(small_dataset, registry, workers=0)

    def test_bad_parallel_mode_rejected(self, small_dataset, registry):
        with pytest.raises(ReconstructionError, match="parallel"):
            build_columnar(small_dataset, registry, parallel="gpu")

    def test_validate_catches_structural_damage(self, small_dataset, registry):
        good = build_columnar(small_dataset, registry)
        good.validate()  # sane as built
        bad = ColumnarDataset(
            video_ids=good.video_ids,
            pop=good.pop,
            views=good.views,
            tags=good.tags,
            indptr=good.indptr,
            indices=good.indices + good.n_videos,  # out of row range
            codes=good.codes,
        )
        with pytest.raises(ReconstructionError, match="indices"):
            bad.validate()


class TestSegmentSums:
    def test_matches_python_accumulation_across_block_sizes(self):
        rng = np.random.default_rng(7)
        matrix = rng.random((23, 5))
        # Incidence with empty segments at the front, middle and end.
        indptr = np.array([0, 0, 4, 4, 4, 9, 10, 10, 23, 23], dtype=np.int64)
        indices = rng.integers(0, 23, size=23).astype(np.int64)
        expected = np.zeros((len(indptr) - 1, 5))
        for t in range(len(indptr) - 1):
            for v in indices[indptr[t]:indptr[t + 1]]:
                expected[t] += matrix[v]
        for block in (1, 2, 5, 7, 1000):
            got = tag_segment_sums(matrix, indptr, indices, block_entries=block)
            np.testing.assert_allclose(got, expected, rtol=1e-12)


class TestNpzPersistence:
    def test_roundtrip_preserves_everything(
        self, small_dataset, registry, tmp_path
    ):
        columnar = build_columnar(small_dataset, registry)
        path = tmp_path / "columnar.npz"
        save_columnar(columnar, path)
        assert (tmp_path / "columnar.npz.sha256").exists()
        loaded = load_columnar(path, registry)
        assert loaded.video_ids == columnar.video_ids
        assert loaded.tags == columnar.tags
        assert loaded.codes == columnar.codes
        np.testing.assert_array_equal(loaded.pop, columnar.pop)
        np.testing.assert_array_equal(loaded.views, columnar.views)
        np.testing.assert_array_equal(loaded.indptr, columnar.indptr)
        np.testing.assert_array_equal(loaded.indices, columnar.indices)

    def test_bitflip_fails_integrity_check(
        self, small_dataset, registry, tmp_path
    ):
        path = tmp_path / "columnar.npz"
        save_columnar(build_columnar(small_dataset, registry), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactIntegrityError):
            load_columnar(path, registry)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "columnar.npz"
        path.write_bytes(b"not an npz archive")
        with pytest.raises(ArtifactError):
            load_columnar(path, verify=False)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "columnar.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ArtifactError, match="not a columnar archive"):
            load_columnar(path, verify=False)

    def test_axis_mismatch_rejected(self, small_dataset, registry, tmp_path):
        path = tmp_path / "columnar.npz"
        save_columnar(build_columnar(small_dataset, registry), path)
        shrunk = registry.subset(["US", "BR"])
        with pytest.raises(ReconstructionError, match="country axis"):
            load_columnar(path, shrunk)

    def test_mmap_load_equals_eager_load(
        self, small_dataset, registry, tmp_path
    ):
        path = tmp_path / "columnar.npz"
        save_columnar(
            build_columnar(small_dataset, registry), path, compressed=False
        )
        eager = load_columnar(path, registry)
        mapped = load_columnar(path, registry, mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(mapped.pop), eager.pop)
        np.testing.assert_array_equal(np.asarray(mapped.views), eager.views)
        np.testing.assert_array_equal(
            np.asarray(mapped.indices), eager.indices
        )

    def test_mmap_falls_back_on_compressed_archive(
        self, small_dataset, registry, tmp_path
    ):
        path = tmp_path / "columnar.npz"
        save_columnar(
            build_columnar(small_dataset, registry), path, compressed=True
        )
        # Compressed members cannot be mapped; the loader degrades to an
        # eager read instead of failing.
        loaded = load_columnar(path, registry, mmap_mode="r")
        eager = load_columnar(path, registry)
        np.testing.assert_array_equal(np.asarray(loaded.pop), eager.pop)
