"""Tests for the event-driven online simulation."""

import pytest

from repro.errors import ConfigError
from repro.placement.cache import LRUCache
from repro.placement.online import (
    OnlineCacheSimulator,
    OnlineTrace,
    OnlineWorkloadGenerator,
    UploadEvent,
    ViewEvent,
)
from repro.placement.policies import (
    NoPlacement,
    OraclePlacement,
    TagPredictivePlacement,
)


@pytest.fixture(scope="module")
def online_trace(tiny_pipeline):
    generator = OnlineWorkloadGenerator(
        tiny_pipeline.universe,
        tiny_pipeline.dataset.video_ids(),
        seed=17,
    )
    return generator.generate(6000)


class TestWorkloadGenerator:
    def test_one_upload_per_video(self, tiny_pipeline, online_trace):
        assert online_trace.upload_count() == len(tiny_pipeline.dataset)
        assert online_trace.view_count() == 6000

    def test_events_time_ordered(self, online_trace):
        times = [event.time for event in online_trace]
        assert times == sorted(times)

    def test_views_never_precede_upload(self, online_trace):
        uploaded = set()
        for event in online_trace:
            if isinstance(event, UploadEvent):
                uploaded.add(event.video_id)
            else:
                assert event.video_id in uploaded

    def test_deterministic(self, tiny_pipeline):
        a = OnlineWorkloadGenerator(
            tiny_pipeline.universe, tiny_pipeline.dataset.video_ids(), seed=3
        ).generate(500)
        b = OnlineWorkloadGenerator(
            tiny_pipeline.universe, tiny_pipeline.dataset.video_ids(), seed=3
        ).generate(500)
        assert a.events == b.events

    def test_views_within_horizon(self, online_trace):
        for event in online_trace:
            assert 0.0 <= event.time < 100.0

    def test_invalid_configs_rejected(self, tiny_pipeline):
        universe = tiny_pipeline.universe
        with pytest.raises(ConfigError):
            OnlineWorkloadGenerator(universe, upload_window=0.0)
        with pytest.raises(ConfigError):
            OnlineWorkloadGenerator(universe, upload_window=50, horizon=40)
        with pytest.raises(ConfigError):
            OnlineWorkloadGenerator(universe, age_decay=0.0)
        with pytest.raises(ConfigError):
            OnlineWorkloadGenerator(universe).generate(-1)


class TestOnlineSimulator:
    def test_accounting(self, tiny_pipeline, online_trace):
        sim = OnlineCacheSimulator(
            tiny_pipeline.universe.registry, lambda: LRUCache(20)
        )
        report = sim.run(tiny_pipeline.dataset, online_trace, NoPlacement())
        assert report.views == online_trace.view_count()
        assert 0 <= report.hits <= report.views
        assert 0 <= report.cold_hits <= report.cold_views <= report.views
        assert report.pins == 0

    def test_cold_window_counts(self, tiny_pipeline, online_trace):
        sim = OnlineCacheSimulator(
            tiny_pipeline.universe.registry, lambda: LRUCache(20), cold_window=1
        )
        report = sim.run(tiny_pipeline.dataset, online_trace, NoPlacement())
        distinct_videos_viewed = len(
            {e.video_id for e in online_trace if isinstance(e, ViewEvent)}
        )
        assert report.cold_views == distinct_videos_viewed

    def test_reactive_always_misses_first_view(self, tiny_pipeline, online_trace):
        # With cold_window=1 and no proactive placement, every video's very
        # first view is a miss by construction.
        sim = OnlineCacheSimulator(
            tiny_pipeline.universe.registry, lambda: LRUCache(20), cold_window=1
        )
        report = sim.run(tiny_pipeline.dataset, online_trace, NoPlacement())
        assert report.cold_hit_rate == 0.0

    def test_proactive_rescues_cold_requests(
        self, tiny_pipeline, online_trace, tiny_predictor
    ):
        universe = tiny_pipeline.universe
        sim = OnlineCacheSimulator(
            universe.registry, lambda: LRUCache(30), cold_window=3
        )
        reactive = sim.run(tiny_pipeline.dataset, online_trace, NoPlacement())
        predictor = tiny_predictor
        tags = sim.run(
            tiny_pipeline.dataset,
            online_trace,
            TagPredictivePlacement(predictor, replicas=8),
        )
        oracle = sim.run(
            tiny_pipeline.dataset,
            online_trace,
            OraclePlacement(universe, replicas=8),
        )
        assert tags.cold_hit_rate > reactive.cold_hit_rate
        assert oracle.cold_hit_rate >= tags.cold_hit_rate * 0.8

    def test_report_rows(self, tiny_pipeline, online_trace):
        sim = OnlineCacheSimulator(
            tiny_pipeline.universe.registry, lambda: LRUCache(10)
        )
        report = sim.run(tiny_pipeline.dataset, online_trace, NoPlacement())
        rows = dict(report.as_rows())
        assert rows["policy"] == "none"
        assert rows["views"] == report.views

    def test_invalid_cold_window_rejected(self, tiny_pipeline):
        with pytest.raises(ConfigError):
            OnlineCacheSimulator(
                tiny_pipeline.universe.registry,
                lambda: LRUCache(10),
                cold_window=-1,
            )
