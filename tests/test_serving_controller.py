"""Tests for origin, replica, and controller routing.

Everything async runs on the virtual-time loop via ``run_virtual`` —
no wall-clock sleeps anywhere, failover timeouts included.
"""

import asyncio

import pytest

from repro.api.faults import FaultInjector
from repro.crawler.politeness import TokenBucket
from repro.datamodel.dataset import Dataset
from repro.datamodel.video import Video
from repro.errors import (
    CircuitOpenError,
    ReplicaDownError,
    ServingError,
    VideoNotFoundError,
)
from repro.placement.cache import LRUCache, StaticCache
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.serving import Controller, Origin, Replica, run_virtual
from repro.serving.simtime import running_loop_time
from repro.world.countries import default_registry

from repro.errors import TransientAPIError


def _video(i: int, views: int = 100) -> Video:
    return Video(
        video_id=f"AAAAAAAAA{i:02d}",
        title=f"video {i}",
        uploader="uploader",
        upload_date="2011-01-01",
        views=views,
        tags=("music",),
    )


VIDEOS = [_video(i) for i in range(8)]
VID = [video.video_id for video in VIDEOS]


@pytest.fixture()
def registry():
    return default_registry()


@pytest.fixture()
def catalogue(registry):
    return Dataset(VIDEOS, registry=registry)


def _build(catalogue, registry, countries=("US", "BR", "JP"), capacity=4, **kw):
    origin = Origin(catalogue, country="US", latency_seconds=0.08)
    replicas = [
        Replica(f"edge-{country}", country, LRUCache(capacity))
        for country in countries
    ]
    controller = Controller(origin, replicas, registry, **kw)
    return origin, {replica.replica_id: replica for replica in replicas}, controller


class TestOrigin:
    def test_fetch_known_video(self, catalogue):
        origin = Origin(catalogue)

        async def main():
            return await origin.fetch(VID[0])

        assert run_virtual(main()) == VID[0]
        assert origin.fetches == 1

    def test_fetch_unknown_video_raises(self, catalogue):
        origin = Origin(catalogue)

        async def main():
            await origin.fetch("ZZZZZZZZZZZ")

        with pytest.raises(VideoNotFoundError):
            run_virtual(main())

    def test_latency_elapses_virtually(self, catalogue):
        origin = Origin(catalogue, latency_seconds=0.5)

        async def main():
            await origin.fetch(VID[0])
            return asyncio.get_event_loop().time()

        assert run_virtual(main()) == pytest.approx(0.5)

    def test_negative_latency_rejected(self, catalogue):
        with pytest.raises(ServingError):
            Origin(catalogue, latency_seconds=-1.0)

    def test_rate_limit_queues_concurrent_fetches(self, catalogue):
        # 2 tokens/sec, burst 1: 5 concurrent fetches serialize at the
        # bucket, each later one paying more queue delay.
        origin = Origin(
            catalogue,
            latency_seconds=0.0,
            rate_limit=TokenBucket(rate=2.0, burst=1),
        )

        async def main():
            await asyncio.gather(*(origin.fetch(VID[0]) for _ in range(5)))
            return asyncio.get_event_loop().time()

        elapsed = run_virtual(main())
        assert elapsed == pytest.approx(2.0)  # 4 queued fetches x 0.5s
        assert origin.throttle_seconds > 0


class TestReplica:
    def test_get_miss_then_push_then_hit(self):
        replica = Replica("edge-US", "US", LRUCache(4))

        async def main():
            miss = await replica.get(VID[0])
            await replica.push(VID[0])
            hit = await replica.get(VID[0])
            return miss, hit

        miss, hit = run_virtual(main())
        assert (miss, hit) == (False, True)
        assert replica.stats.gets == 2
        assert replica.stats.pushes == 1

    def test_down_replica_raises_and_counts(self):
        replica = Replica("edge-US", "US", LRUCache(4))
        replica.fail()

        async def main():
            await replica.get(VID[0])

        with pytest.raises(ReplicaDownError):
            run_virtual(main())
        assert replica.stats.rejected == 1

    def test_cache_survives_outage(self):
        replica = Replica("edge-US", "US", LRUCache(4))

        async def main():
            await replica.push(VID[0])
            replica.fail()
            replica.recover()
            return await replica.get(VID[0])

        assert run_virtual(main()) is True

    def test_admit_ignored_while_down(self):
        replica = Replica("edge-US", "US", LRUCache(4))
        replica.fail()
        replica.admit(VID[0])
        assert replica.contents() == set()

    def test_fault_injector_raises_transient(self):
        replica = Replica(
            "edge-US",
            "US",
            LRUCache(4),
            fault_injector=FaultInjector(rate=0.999, seed=1),
        )

        async def main():
            await replica.get(VID[0])

        with pytest.raises(TransientAPIError):
            run_virtual(main())


class TestControllerValidation:
    def test_duplicate_replica_id(self, catalogue, registry):
        origin = Origin(catalogue)
        replicas = [
            Replica("edge-X", "US", LRUCache(2)),
            Replica("edge-X", "BR", LRUCache(2)),
        ]
        with pytest.raises(ServingError, match="duplicate"):
            Controller(origin, replicas, registry)

    def test_two_replicas_one_country(self, catalogue, registry):
        origin = Origin(catalogue)
        replicas = [
            Replica("edge-a", "US", LRUCache(2)),
            Replica("edge-b", "US", LRUCache(2)),
        ]
        with pytest.raises(ServingError, match="two replicas"):
            Controller(origin, replicas, registry)

    def test_unknown_replica_country(self, catalogue, registry):
        origin = Origin(catalogue)
        with pytest.raises(ServingError, match="unknown country"):
            Controller(
                origin, [Replica("edge-x", "XX", LRUCache(2))], registry
            )

    def test_unknown_request_country(self, catalogue, registry):
        _, _, controller = _build(catalogue, registry)

        async def main():
            await controller.get(VID[0], "XX")

        with pytest.raises(ServingError, match="unknown country"):
            run_virtual(main())
        assert controller.stats.requests == 0

    def test_unknown_replica_lookup(self, catalogue, registry):
        _, _, controller = _build(catalogue, registry)
        with pytest.raises(ServingError):
            controller.replica("edge-nope")
        with pytest.raises(ServingError):
            controller.breaker("edge-nope")
        with pytest.raises(ServingError):
            controller.home("XX")


class TestRouting:
    def test_cold_miss_goes_to_origin_then_local_hit(self, catalogue, registry):
        origin, replicas, controller = _build(catalogue, registry)

        async def main():
            first = await controller.get(VID[0], "US")
            second = await controller.get(VID[0], "US")
            return first, second

        first, second = run_virtual(main())
        assert first.source == "origin"
        assert first.served_by == "origin"
        assert second.source == "local"
        assert second.served_by == "edge-US"
        assert second.distance_km == 0.0
        assert origin.fetches == 1
        assert controller.stats.local_hits == 1
        assert controller.stats.admissions >= 1

    def test_home_attachment_for_country_without_replica(
        self, catalogue, registry
    ):
        _, replicas, controller = _build(catalogue, registry)
        home = controller.home("DE")
        assert home.replica_id in replicas
        # home is the *nearest* replica: no other replica is closer.
        home_distance = controller._distance("DE", home.country)
        for replica in replicas.values():
            assert home_distance <= controller._distance("DE", replica.country)

        async def main():
            await controller.get(VID[0], "DE")  # origin; admits at home
            return await controller.get(VID[0], "DE")

        result = run_virtual(main())
        assert result.source == "local"
        assert result.served_by == home.replica_id

    def test_push_enables_local_hit_without_origin(self, catalogue, registry):
        origin, _, controller = _build(catalogue, registry)

        async def main():
            await controller.push("edge-BR", VID[1])
            return await controller.get(VID[1], "BR")

        result = run_virtual(main())
        assert result.source == "local"
        assert origin.fetches == 0
        assert controller.holders(VID[1]) == {"edge-BR"}

    def test_remote_hit_from_peer_replica(self, catalogue, registry):
        origin, _, controller = _build(catalogue, registry)

        async def main():
            await controller.push("edge-JP", VID[2])
            return await controller.get(VID[2], "BR")

        result = run_virtual(main())
        assert result.source == "remote"
        assert result.served_by == "edge-JP"
        assert result.distance_km > 0
        assert origin.fetches == 0
        # The copy rode back: BR's home replica admitted it reactively.
        assert controller.stats.admissions == 1

    def test_exactly_once_accounting(self, catalogue, registry):
        _, _, controller = _build(catalogue, registry)

        async def main():
            for i, country in enumerate(["US", "BR", "JP", "DE", "US", "BR"]):
                await controller.get(VID[i % len(VID)], country)

        run_virtual(main())
        stats = controller.stats
        assert stats.requests == 6
        assert stats.local_hits + stats.remote_hits + stats.origin_fetches == 6
        assert stats.failed == 0

    def test_push_to_dead_replica_raises(self, catalogue, registry):
        _, replicas, controller = _build(catalogue, registry)
        replicas["edge-BR"].fail()

        async def main():
            await controller.push("edge-BR", VID[0])

        with pytest.raises(ReplicaDownError):
            run_virtual(main())
        assert controller.stats.push_failures == 1

    def test_place_skips_dead_replica(self, catalogue, registry):
        _, replicas, controller = _build(catalogue, registry)
        replicas["edge-JP"].fail()
        plan = {"edge-US": [VID[0], VID[1]], "edge-JP": [VID[2]]}

        async def main():
            return await controller.place(plan)

        assert run_virtual(main()) == 2
        assert controller.holders(VID[2]) == set()

    def test_push_beyond_static_capacity_not_indexed(self, catalogue, registry):
        origin = Origin(catalogue)
        replica = Replica("edge-US", "US", StaticCache(1))
        controller = Controller(origin, [replica], registry)

        async def main():
            first = await controller.push("edge-US", VID[0])
            second = await controller.push("edge-US", VID[1])
            return first, second

        assert run_virtual(main()) == (True, False)
        assert controller.holders(VID[1]) == set()


class TestFailover:
    def test_dead_local_reroutes_to_peer(self, catalogue, registry):
        origin, replicas, controller = _build(catalogue, registry)

        async def main():
            await controller.place(
                {"edge-BR": [VID[0]], "edge-JP": [VID[0]]}
            )
            replicas["edge-BR"].fail()
            return await controller.get(VID[0], "BR")

        result = run_virtual(main())
        assert result.source == "remote"
        assert result.served_by == "edge-JP"
        assert controller.stats.reroutes == 1
        assert controller.stats.failed == 0

    def test_all_replicas_dead_origin_still_serves(self, catalogue, registry):
        origin, replicas, controller = _build(catalogue, registry)

        async def main():
            await controller.place(
                {"edge-US": [VID[0]], "edge-BR": [VID[0]], "edge-JP": [VID[0]]}
            )
            for replica in replicas.values():
                replica.fail()
            return await controller.get(VID[0], "US")

        result = run_virtual(main())
        assert result.source == "origin"
        assert origin.fetches == 1
        assert controller.stats.failed == 0

    def test_breaker_opens_after_repeated_failures(self, catalogue, registry):
        _, replicas, controller = _build(catalogue, registry)

        async def main():
            await controller.push("edge-BR", VID[0])
            replicas["edge-BR"].fail()
            for _ in range(5):
                await controller.get(VID[0], "BR")

        run_virtual(main())
        breaker = controller.breaker("edge-BR")
        assert breaker.opens >= 1
        # Once open, probes are refused at the breaker, not the replica:
        # the replica saw exactly failure_threshold rejected calls.
        assert replicas["edge-BR"].stats.rejected == 3

    def test_breaker_recovers_in_virtual_time(self, catalogue, registry):
        _, replicas, controller = _build(catalogue, registry)

        async def main():
            await controller.push("edge-BR", VID[0])
            replicas["edge-BR"].fail()
            for _ in range(4):
                await controller.get(VID[0], "BR")  # trips the breaker
            replicas["edge-BR"].recover()
            healed = await controller.get(VID[0], "BR")
            assert healed.source == "origin" or healed.source == "remote"
            # reset_timeout (5s) elapses on the virtual clock only.
            await asyncio.sleep(6.0)
            return await controller.get(VID[0], "BR")

        result = run_virtual(main())
        assert result.source == "local"
        assert result.served_by == "edge-BR"

    def test_transient_faults_are_retried_not_failed(self, catalogue, registry):
        origin = Origin(catalogue)
        # Deterministic flaky replica: ~40% of calls raise transient.
        replica = Replica(
            "edge-US",
            "US",
            LRUCache(8),
            fault_injector=FaultInjector(rate=0.4, seed=3),
        )
        controller = Controller(
            origin,
            [replica],
            registry,
            retry=RetryPolicy(
                max_attempts=3,
                backoff_base=0.01,
                retryable=(TransientAPIError,),
            ),
        )

        async def main():
            await controller.push("edge-US", VID[0])
            for _ in range(30):
                await controller.get(VID[0], "US")

        run_virtual(main())
        # At a 40% fault rate the breaker may legitimately open and route
        # to the origin for a while; what matters is the accounting: no
        # request fails, retries happen, and every request is served.
        assert controller.stats.failed == 0
        assert controller.stats.retries > 0
        assert controller.stats.local_hits > 0
        assert (
            controller.stats.local_hits + controller.stats.origin_fetches == 30
        )


class TestRoutingIndex:
    def test_index_is_superset_of_contents(self, catalogue, registry):
        _, replicas, controller = _build(catalogue, registry, capacity=2)

        async def main():
            for vid in VID:
                await controller.push("edge-US", vid)  # overflows capacity 2
            for i, country in enumerate(["US", "BR", "JP"] * 4):
                await controller.get(VID[i % len(VID)], country)

        run_virtual(main())
        index = controller.routing_index()
        for replica in replicas.values():
            for video_id in replica.contents():
                assert replica.replica_id in index.get(video_id, set()), (
                    f"{video_id} cached on {replica.replica_id} but unindexed"
                )

    def test_stale_entry_self_heals(self, catalogue, registry):
        origin, replicas, controller = _build(
            catalogue, registry, capacity=2, reactive_admission=False
        )

        async def main():
            await controller.push("edge-US", VID[0])
            # Overflow the LRU so VID[0] is silently evicted.
            await controller.push("edge-US", VID[1])
            await controller.push("edge-US", VID[2])
            return await controller.get(VID[0], "US")

        result = run_virtual(main())
        assert result.source == "origin"  # stale index entry didn't lie twice
        assert controller.holders(VID[0]) == set()
