"""Tests for the virtual-time event loop and simulation harness.

Also holds the suite-wide determinism guard: no file in the serving
layer (sources or tests) may call ``time.sleep`` — all waiting must go
through ``asyncio.sleep`` on the virtual clock.
"""

import asyncio
import re
import time
from pathlib import Path

import pytest

from repro.errors import SimulationDeadlockError
from repro.serving import SimulationHarness, VirtualTimeLoop, run_virtual

REPO_ROOT = Path(__file__).parent.parent


class TestRunVirtual:
    def test_sleeps_cost_no_wall_time(self):
        async def main():
            await asyncio.sleep(3600.0)
            return asyncio.get_event_loop().time()

        started = time.perf_counter()
        finished_at = run_virtual(main())
        wall = time.perf_counter() - started
        assert finished_at == pytest.approx(3600.0)
        assert wall < 5.0  # an hour of virtual time, near-instant for real

    def test_virtual_clock_starts_at_zero(self):
        async def main():
            return asyncio.get_event_loop().time()

        assert run_virtual(main()) == 0.0

    def test_start_offset(self):
        async def main():
            return asyncio.get_event_loop().time()

        assert run_virtual(main(), start=100.0) == 100.0

    def test_concurrent_sleeps_complete_in_deadline_order(self):
        order = []

        async def sleeper(name, delay):
            await asyncio.sleep(delay)
            order.append((name, asyncio.get_event_loop().time()))

        async def main():
            await asyncio.gather(
                sleeper("slow", 10.0),
                sleeper("fast", 1.0),
                sleeper("medium", 5.0),
            )

        run_virtual(main())
        assert order == [("fast", 1.0), ("medium", 5.0), ("slow", 10.0)]

    def test_wait_for_timeout_fires_virtually(self):
        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.sleep(60.0), timeout=2.0)
            return asyncio.get_event_loop().time()

        assert run_virtual(main()) == pytest.approx(2.0)

    def test_deadlock_raises_instead_of_hanging(self):
        async def main():
            await asyncio.get_event_loop().create_future()  # never resolves

        with pytest.raises(SimulationDeadlockError):
            run_virtual(main())

    def test_determinism_across_runs(self):
        async def main():
            log = []

            async def worker(i):
                await asyncio.sleep(0.01 * (i % 3 + 1))
                log.append(i)

            await asyncio.gather(*(worker(i) for i in range(20)))
            return tuple(log)

        assert run_virtual(main()) == run_virtual(main())

    def test_exception_propagates_and_loop_closes(self):
        async def main():
            await asyncio.sleep(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_virtual(main())


class TestSimulationHarness:
    def test_time_persists_across_runs(self):
        with SimulationHarness() as harness:
            harness.run(asyncio.sleep(5.0))
            harness.run(asyncio.sleep(10.0))
            assert harness.now == pytest.approx(15.0)

    def test_close_is_idempotent(self):
        harness = SimulationHarness()
        harness.run(asyncio.sleep(1.0))
        harness.close()
        harness.close()
        assert harness.loop.is_closed()

    def test_loop_is_virtual(self):
        with SimulationHarness(start=7.0) as harness:
            assert isinstance(harness.loop, VirtualTimeLoop)
            assert harness.now == 7.0


class TestNoWallClockSleeps:
    def test_serving_layer_never_calls_time_sleep(self):
        """The determinism guarantee, enforced mechanically."""
        suspects = [
            *(REPO_ROOT / "src" / "repro" / "serving").glob("*.py"),
            *(REPO_ROOT / "tests").glob("test_serving_*.py"),
            REPO_ROOT / "benchmarks" / "bench_s2_edge_serving.py",
        ]
        assert len(suspects) > 8, "serving layer files went missing"
        pattern = re.compile(r"\btime\.sleep\s*\(")
        offenders = [
            str(path)
            for path in suspects
            if pattern.search(path.read_text(encoding="utf-8"))
        ]
        assert offenders == []
