"""Unit tests for the out-of-core pieces: store, streaming build, Eq. (3).

The load-bearing contract: a store built from a chunk stream is
*identical* — array for array — to the dense columnar build over the
same videos, and the streaming Eq. (3) reduction is *bit-identical*
(float64) to the dense ``tag_segment_sums(reconstruct_all(...))`` path,
for every block size including the degenerate ones.
"""

import numpy as np
import pytest

from repro.datamodel.dataset import Dataset
from repro.engine.columnar import build_columnar
from repro.engine.compute import reconstruct_all, tag_segment_sums
from repro.engine.outofcore import (
    build_store_streaming,
    row_metrics_streaming,
    tag_views_streaming,
)
from repro.engine.store import StoreWriter, open_store, save_store
from repro.errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ReconstructionError,
)
from repro.reconstruct.tagviews import TagViewsTable
from repro.reconstruct.views import ViewReconstructor
from repro.synth.stream import StreamingUniverse, chunk_to_videos
from repro.synth.universe import UniverseConfig
from repro.world.countries import default_registry
from repro.world.traffic import default_traffic_model

CONFIG = UniverseConfig(n_videos=2_000, n_tags=300, seed=2011)

#: Block/chunk sizes the streaming reductions must be invariant under.
_BLOCKS = (1, 7, 10**7)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def universe(registry):
    return StreamingUniverse(CONFIG, registry=registry)


@pytest.fixture(scope="module")
def chunks(universe):
    return list(universe.iter_chunks(chunk_rows=333))


@pytest.fixture(scope="module")
def dense(chunks, universe, registry):
    """The dense reference build over the same corpus."""
    videos = [
        video
        for chunk in chunks
        for video in chunk_to_videos(chunk, universe.tag_names, registry)
    ]
    return build_columnar(Dataset(videos), registry)


@pytest.fixture(scope="module")
def store(chunks, universe, registry, tmp_path_factory):
    return build_store_streaming(
        iter(chunks),
        universe.tag_names,
        tmp_path_factory.mktemp("store") / "columnar",
        registry=registry,
    )


@pytest.fixture(scope="module")
def reconstructor():
    return ViewReconstructor(default_traffic_model())


class TestStreamingBuild:
    def test_identical_to_dense_build(self, store, dense):
        assert list(store.video_ids) == list(dense.video_ids)
        assert list(store.tags) == list(dense.tags)
        np.testing.assert_array_equal(np.asarray(store.pop), dense.pop)
        np.testing.assert_array_equal(np.asarray(store.views), dense.views)
        np.testing.assert_array_equal(np.asarray(store.indptr), dense.indptr)
        np.testing.assert_array_equal(
            np.asarray(store.indices), dense.indices
        )

    def test_store_arrays_are_memmapped(self, store):
        assert isinstance(store.pop, np.memmap)
        assert isinstance(store.views, np.memmap)

    def test_rows_without_map_are_dropped(self, chunks, store):
        eligible = sum(int(chunk.has_map.sum()) for chunk in chunks)
        assert store.n_videos == eligible


class TestStreamingEquation3:
    def test_bitwise_equal_across_block_sizes(
        self, store, dense, reconstructor
    ):
        estimated = reconstruct_all(
            dense.pop, dense.views, reconstructor.prior
        )
        expected = tag_segment_sums(estimated, dense.indptr, dense.indices)
        for block_entries in _BLOCKS:
            got = tag_views_streaming(
                store,
                prior=reconstructor.prior,
                block_entries=block_entries,
            )
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("mode", ["naive", "smoothed"])
    def test_modes_bitwise_equal(self, store, dense, reconstructor, mode):
        naive = mode == "naive"
        smoothing = 0.7 if mode == "smoothed" else 0.0
        estimated = reconstruct_all(
            dense.pop,
            dense.views,
            reconstructor.prior,
            naive=naive,
            smoothing=smoothing,
        )
        expected = tag_segment_sums(estimated, dense.indptr, dense.indices)
        got = tag_views_streaming(
            store,
            prior=reconstructor.prior,
            naive=naive,
            smoothing=smoothing,
        )
        np.testing.assert_array_equal(got, expected)

    def test_float32_within_documented_bound(self, store, reconstructor):
        f64 = tag_views_streaming(store, prior=reconstructor.prior)
        f32 = tag_views_streaming(
            store, prior=reconstructor.prior, dtype="float32"
        )
        assert f32.dtype == np.float32
        mask = np.abs(f64) > 0
        rel = np.max(np.abs(f32[mask] - f64[mask]) / f64[mask])
        assert rel <= 1e-4

    def test_tag_table_streaming_equals_dense(self, store, reconstructor):
        dense_table = TagViewsTable.from_columnar(store, reconstructor)
        streamed = TagViewsTable.from_columnar(
            store, reconstructor, streaming=True
        )
        assert streamed.tags() == dense_table.tags()
        np.testing.assert_array_equal(
            streamed.views_matrix(), dense_table.views_matrix()
        )

    def test_row_metrics_streaming_matches_dense_kernels(
        self, store, reconstructor
    ):
        from repro.engine.compute import (
            entropy_rows,
            rows_to_distributions,
        )

        shares = rows_to_distributions(
            reconstruct_all(store.pop, store.views, reconstructor.prior)
        )
        got = row_metrics_streaming(
            store, prior=reconstructor.prior, chunk_rows=97
        )
        np.testing.assert_array_equal(got["entropy"], entropy_rows(shares))

    def test_missing_prior_rejected(self, store):
        with pytest.raises(ReconstructionError):
            tag_views_streaming(store)


class TestStorePersistence:
    def test_save_open_roundtrip(self, dense, tmp_path, registry):
        root = save_store(dense, tmp_path / "store")
        reopened = open_store(root, registry=registry)
        assert list(reopened.video_ids) == list(dense.video_ids)
        np.testing.assert_array_equal(np.asarray(reopened.pop), dense.pop)
        np.testing.assert_array_equal(
            np.asarray(reopened.indices), dense.indices
        )

    def test_eager_open_equals_mapped(self, dense, tmp_path):
        root = save_store(dense, tmp_path / "store")
        eager = open_store(root, mmap=False)
        assert not isinstance(eager.pop, np.memmap)
        np.testing.assert_array_equal(np.asarray(eager.pop), dense.pop)

    def test_bitflip_fails_streaming_verification(self, dense, tmp_path):
        root = save_store(dense, tmp_path / "store")
        target = root / "views.bin"
        payload = bytearray(target.read_bytes())
        payload[3] ^= 0xFF
        target.write_bytes(bytes(payload))
        with pytest.raises(ArtifactIntegrityError):
            open_store(root)
        # verify=False maps the damaged bytes without complaint — the
        # caller owns that trade (used right after a hashed write).
        open_store(root, verify=False)

    def test_non_store_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            open_store(tmp_path)

    def test_axis_mismatch_rejected(self, dense, tmp_path):
        root = save_store(dense, tmp_path / "store")
        meta = (root / "meta.json").read_text()

        class TwoCountries:
            def codes(self):
                return ("US", "BR")

        assert "codes" in meta
        with pytest.raises(ReconstructionError):
            open_store(root, registry=TwoCountries())

    def test_aborted_writer_leaves_no_store(self, tmp_path, registry):
        writer = StoreWriter(tmp_path / "store", registry.codes())
        writer.append(
            np.zeros((2, len(registry)), dtype=np.uint8),
            np.array([1, 2]),
            np.array(["AAAAAAAAA00", "AAAAAAAAA01"]),
        )
        writer.abort()
        with pytest.raises(ArtifactError):
            open_store(tmp_path / "store")

    def test_mismatched_batch_rejected(self, tmp_path, registry):
        writer = StoreWriter(tmp_path / "store", registry.codes())
        with pytest.raises(ReconstructionError):
            writer.append(
                np.zeros((2, 3), dtype=np.uint8),
                np.array([1, 2]),
                np.array(["AAAAAAAAA00", "AAAAAAAAA01"]),
            )
        writer.abort()
