"""Checkpoint/resume tests: a resumed crawl equals an uninterrupted one."""

import pytest

from repro.api.service import YoutubeService
from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.snowball import SnowballCrawler
from repro.durability.artifacts import checksum_path
from repro.durability.fsfaults import FaultyFilesystem
from repro.errors import CheckpointError


def crawl_with_interruption(universe, stop_at, total):
    """Crawl to ``stop_at``, checkpoint, resume, finish to ``total``."""
    service = YoutubeService(universe)
    first = SnowballCrawler(service, max_videos=stop_at)
    first.run()
    checkpoint = first.checkpoint()
    resumed = SnowballCrawler.resume(
        YoutubeService(universe), checkpoint, max_videos=total
    )
    return resumed.run()


class TestResumeEquivalence:
    @pytest.mark.parametrize("stop_at", [1, 10, 37, 80])
    def test_resume_equals_uninterrupted(self, tiny_universe, stop_at):
        uninterrupted = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=120
        ).run()
        resumed = crawl_with_interruption(tiny_universe, stop_at, 120)
        assert (
            resumed.dataset.video_ids() == uninterrupted.dataset.video_ids()
        )

    def test_stats_accumulate_across_resume(self, tiny_universe):
        result = crawl_with_interruption(tiny_universe, 20, 60)
        assert result.stats.fetched == 60


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=25)
        crawler.run()
        checkpoint = crawler.checkpoint()
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        loaded = CrawlCheckpoint.load(path)
        assert loaded.seeded == checkpoint.seeded
        assert loaded.pending == checkpoint.pending
        assert loaded.admitted == checkpoint.admitted
        assert loaded.videos == checkpoint.videos
        assert loaded.stats.to_dict() == checkpoint.stats.to_dict()

    def test_resume_from_file(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=25)
        crawler.run()
        path = tmp_path / "crawl.ckpt.json"
        crawler.checkpoint().save(path)
        resumed = SnowballCrawler.resume(
            YoutubeService(tiny_universe),
            CrawlCheckpoint.load(path),
            max_videos=50,
        )
        result = resumed.run()
        assert len(result.dataset) == 50

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(tmp_path / "absent.json")

    def test_inconsistent_frontier_rejected(self):
        checkpoint = CrawlCheckpoint(
            pending=[("AAAAAAAAAAA", 0)],
            admitted=[],
            videos=[],
            stats=__import__(
                "repro.crawler.stats", fromlist=["CrawlStats"]
            ).CrawlStats(),
            seeded=True,
        )
        with pytest.raises(CheckpointError):
            checkpoint.restore_frontier()

    def test_atomic_write_leaves_no_tmp(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=5)
        crawler.run()
        path = tmp_path / "crawl.ckpt.json"
        crawler.checkpoint().save(path)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestCheckpointDurability:
    @pytest.fixture()
    def checkpoint(self, tiny_universe):
        crawler = SnowballCrawler(YoutubeService(tiny_universe), max_videos=5)
        crawler.run()
        return crawler.checkpoint()

    def test_save_writes_integrity_sidecar(self, checkpoint, tmp_path):
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        assert checksum_path(path).exists()
        assert CrawlCheckpoint.load(path).videos == checkpoint.videos

    def test_failed_save_preserves_previous_checkpoint(
        self, checkpoint, tmp_path
    ):
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        good_bytes = path.read_bytes()
        # Every write hits ENOSPC: the save must fail loudly...
        enospc = FaultyFilesystem(seed=0, fault_rate=0.99, kinds=("enospc",))
        with pytest.raises(CheckpointError):
            checkpoint.save(path, fs=enospc)
        # ...while the old checkpoint and its sidecar stay intact,
        # and no temp file leaks.
        assert path.read_bytes() == good_bytes
        assert not list(tmp_path.glob("*.tmp"))
        assert CrawlCheckpoint.load(path).seeded == checkpoint.seeded

    def test_bit_flip_detected_on_load(self, checkpoint, tmp_path):
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupt"):
            CrawlCheckpoint.load(path)

    def test_truncation_at_every_offset_never_loads_partial_state(
        self, checkpoint, tmp_path
    ):
        """Satellite: a checksummed checkpoint cut at ANY byte offset is
        refused outright — with a sidecar there is no 'previous durable
        state' inside one file, so every truncation must raise."""
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        good_bytes = path.read_bytes()
        target = tmp_path / "cut.ckpt.json"
        sidecar = checksum_path(target)
        sidecar.write_bytes(checksum_path(path).read_bytes())
        for cut in range(len(good_bytes)):
            target.write_bytes(good_bytes[:cut])
            with pytest.raises(CheckpointError):
                CrawlCheckpoint.load(target)
        # The untruncated bytes still load.
        target.write_bytes(good_bytes)
        assert CrawlCheckpoint.load(target).videos == checkpoint.videos

    def test_sidecarless_legacy_checkpoint_still_loads(
        self, checkpoint, tmp_path
    ):
        path = tmp_path / "old.ckpt.json"
        checkpoint.save(path)
        checksum_path(path).unlink()
        assert CrawlCheckpoint.load(path).seeded == checkpoint.seeded
