"""Checkpoint/resume tests: a resumed crawl equals an uninterrupted one."""

import pytest

from repro.api.service import YoutubeService
from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.snowball import SnowballCrawler
from repro.errors import CheckpointError


def crawl_with_interruption(universe, stop_at, total):
    """Crawl to ``stop_at``, checkpoint, resume, finish to ``total``."""
    service = YoutubeService(universe)
    first = SnowballCrawler(service, max_videos=stop_at)
    first.run()
    checkpoint = first.checkpoint()
    resumed = SnowballCrawler.resume(
        YoutubeService(universe), checkpoint, max_videos=total
    )
    return resumed.run()


class TestResumeEquivalence:
    @pytest.mark.parametrize("stop_at", [1, 10, 37, 80])
    def test_resume_equals_uninterrupted(self, tiny_universe, stop_at):
        uninterrupted = SnowballCrawler(
            YoutubeService(tiny_universe), max_videos=120
        ).run()
        resumed = crawl_with_interruption(tiny_universe, stop_at, 120)
        assert (
            resumed.dataset.video_ids() == uninterrupted.dataset.video_ids()
        )

    def test_stats_accumulate_across_resume(self, tiny_universe):
        result = crawl_with_interruption(tiny_universe, 20, 60)
        assert result.stats.fetched == 60


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=25)
        crawler.run()
        checkpoint = crawler.checkpoint()
        path = tmp_path / "crawl.ckpt.json"
        checkpoint.save(path)
        loaded = CrawlCheckpoint.load(path)
        assert loaded.seeded == checkpoint.seeded
        assert loaded.pending == checkpoint.pending
        assert loaded.admitted == checkpoint.admitted
        assert loaded.videos == checkpoint.videos
        assert loaded.stats.to_dict() == checkpoint.stats.to_dict()

    def test_resume_from_file(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=25)
        crawler.run()
        path = tmp_path / "crawl.ckpt.json"
        crawler.checkpoint().save(path)
        resumed = SnowballCrawler.resume(
            YoutubeService(tiny_universe),
            CrawlCheckpoint.load(path),
            max_videos=50,
        )
        result = resumed.run()
        assert len(result.dataset) == 50

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(tmp_path / "absent.json")

    def test_inconsistent_frontier_rejected(self):
        checkpoint = CrawlCheckpoint(
            pending=[("AAAAAAAAAAA", 0)],
            admitted=[],
            videos=[],
            stats=__import__(
                "repro.crawler.stats", fromlist=["CrawlStats"]
            ).CrawlStats(),
            seeded=True,
        )
        with pytest.raises(CheckpointError):
            checkpoint.restore_frontier()

    def test_atomic_write_leaves_no_tmp(self, tiny_universe, tmp_path):
        service = YoutubeService(tiny_universe)
        crawler = SnowballCrawler(service, max_videos=5)
        crawler.run()
        path = tmp_path / "crawl.ckpt.json"
        crawler.checkpoint().save(path)
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))
