"""Tests for the injectable clock seam (:mod:`repro.clock`)."""

import pytest

from repro.clock import (
    SYSTEM_CLOCK,
    Clock,
    ManualClock,
    SystemClock,
    now_fn,
)
from repro.errors import ConfigError


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock().now() == 0.0
        assert ManualClock(start=42.5).now() == 42.5

    def test_sleep_advances_and_records(self):
        clock = ManualClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.0)
        assert clock.sleeps == [1.5, 0.5]

    def test_advance_moves_time_without_recording(self):
        clock = ManualClock()
        clock.advance(10.0)
        assert clock.now() == 10.0
        assert clock.sleeps == []

    def test_negative_times_rejected(self):
        clock = ManualClock()
        with pytest.raises(ConfigError):
            clock.sleep(-1.0)
        with pytest.raises(ConfigError):
            clock.advance(-0.1)


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_zero_sleep_returns_immediately(self):
        SystemClock().sleep(0.0)  # must not block
        SystemClock().sleep(-1.0)  # negative treated as no wait

    def test_shared_default_instance(self):
        assert isinstance(SYSTEM_CLOCK, SystemClock)


class TestNowFn:
    def test_clock_normalizes_to_its_now(self):
        clock = ManualClock(start=7.0)
        fn = now_fn(clock)
        assert fn() == 7.0
        clock.advance(1.0)
        assert fn() == 8.0

    def test_bare_callable_passes_through(self):
        fn = now_fn(lambda: 3.0)
        assert fn() == 3.0

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            now_fn(42)

    def test_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().now()
        with pytest.raises(NotImplementedError):
            Clock().sleep(1.0)
